"""Orca operators: table descriptors, the logical block tree, physical ops.

The parse-tree converter produces one :class:`OrcaLogicalBlock` per MySQL
query block.  Each base-table unit is a :class:`LogicalGet` (optionally
wrapped by a :class:`LogicalSelect` after predicate segregation —
Section 4.1's pushdown requirement); the inner-join core is an n-ary join;
LEFT OUTER joins and semi/anti nests attach as ordered specs around it, as
Orca models them with join/apply operators.

Every table descriptor carries a pointer to the MySQL ``TABLE_LIST`` entry
(Section 4.1: descriptors are "enhanced by adding to them pointers to the
TABLE_LIST data structure"), which the plan converter later uses to map
physical leaves back to MySQL query blocks without re-searching the parse
tree.

Physical operators carry the memo group id they were extracted from, which
is what the paper's Fig. 6 displays after each operator name.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.mysql_optimizer.skeleton import AccessPlan
from repro.sql import ast
from repro.sql.blocks import NestKind, QueryBlock, TableEntry


@dataclass
class TableDescriptor:
    """Orca's view of one table reference.

    ``mdid`` is the metadata OID obtained from the MySQL metadata provider
    (Section 4.1: "a typical interaction ... is to send the schema-
    qualified name of a table ... and receive that table's unique OID").
    ``entry`` is the TABLE_LIST pointer.
    """

    mdid: int
    name: str
    alias: str
    entry: TableEntry


@dataclass
class LogicalGet:
    """Scan of one table reference (base, derived, or CTE consumer)."""

    descriptor: TableDescriptor
    #: Local predicates segregated onto this get (selection pushdown).
    conjuncts: List[ast.Expr] = field(default_factory=list)


class LogicalSelect:
    """A residual selection (predicates not pushable to any single get)."""

    def __init__(self, conjuncts: List[ast.Expr]) -> None:
        self.conjuncts = conjuncts


@dataclass
class LogicalOuterJoinSpec:
    """One LEFT OUTER JOIN layered onto the inner-join core."""

    inner: LogicalGet
    on_conjuncts: List[ast.Expr]


@dataclass
class LogicalSemiJoinSpec:
    """One semi/anti-join nest layered onto the inner-join core."""

    kind: NestKind
    nest_id: int
    inners: List[LogicalGet]
    #: Conjuncts bridging the nest to the outer side plus nest-internal
    #: join conjuncts (nest-local single-table conjuncts live on the gets).
    conjuncts: List[ast.Expr]


@dataclass
class LogicalNAryJoin:
    """The block's inner-join core: n units plus the cross-conjunct pool."""

    units: List[LogicalGet]
    conjuncts: List[ast.Expr]


@dataclass
class LogicalGbAgg:
    """Grouping/aggregation over the join result."""

    group_exprs: List[ast.Expr]
    agg_calls: List[ast.AggCall]


@dataclass
class LogicalLimit:
    """ORDER BY / LIMIT requirements at the top of a block."""

    order_items: List[ast.OrderItem]
    limit: Optional[int]
    offset: Optional[int]


@dataclass
class OrcaLogicalBlock:
    """The converted logical tree for one MySQL query block.

    Clause-wise converted in the order Section 4.1 lists (FROM,
    WHERE(1) ... LIMIT); the structure keeps the pieces separate because
    the conservative integration never changes block structure.
    """

    block: QueryBlock
    core: LogicalNAryJoin
    outer_joins: List[LogicalOuterJoinSpec]
    semi_joins: List[LogicalSemiJoinSpec]
    residual: LogicalSelect
    agg: Optional[LogicalGbAgg]
    limit: LogicalLimit
    #: Correlated derived tables (the Q17 "derived table approach" of
    #: Section 4.2.3): they must join after their correlation sources, so
    #: they stay out of the n-ary core and attach afterwards.
    dependent_units: List[LogicalGet] = field(default_factory=list)
    dependent_conjuncts: List[ast.Expr] = field(default_factory=list)

    def all_units(self) -> List[LogicalGet]:
        units = list(self.core.units)
        for spec in self.outer_joins:
            units.append(spec.inner)
        for spec in self.semi_joins:
            units.extend(spec.inners)
        units.extend(self.dependent_units)
        return units


# ---------------------------------------------------------------------------
# Physical operators
# ---------------------------------------------------------------------------

class PhysicalOp:
    """Base class for Orca physical operators."""

    def __init__(self) -> None:
        self.cost: float = 0.0
        self.rows: float = 0.0
        #: Memo group this expression was extracted from (Fig. 6 ids).
        self.group_id: Optional[int] = None

    def children(self) -> Sequence["PhysicalOp"]:
        return ()

    def leaves(self):
        if not self.children():
            yield self
            return
        for child in self.children():
            yield from child.leaves()

    def name(self) -> str:
        return type(self).__name__

    def describe(self) -> str:
        suffix = f" [{self.group_id}]" if self.group_id is not None else ""
        return f"{self.name()}{suffix}"


class PhysicalGet(PhysicalOp):
    """A physical leaf: one table reference with its chosen access plan."""

    def __init__(self, descriptor: TableDescriptor, access: AccessPlan,
                 conjuncts: List[ast.Expr]) -> None:
        super().__init__()
        self.descriptor = descriptor
        self.access = access
        self.conjuncts = conjuncts

    def name(self) -> str:
        method = self.access.method.value if self.access else "scan"
        return f"{method}:{self.descriptor.alias}"


class JoinVariant(enum.Enum):
    INNER = "inner"
    LEFT = "left"
    SEMI = "semi"
    ANTI = "anti"


class PhysicalNLJoin(PhysicalOp):
    """Nested-loop join; ``index_inner`` marks an index NL join whose inner
    get uses a lookup keyed on outer columns."""

    def __init__(self, outer: PhysicalOp, inner: PhysicalOp,
                 variant: JoinVariant, conjuncts: List[ast.Expr],
                 index_inner: bool = False) -> None:
        super().__init__()
        self.outer = outer
        self.inner = inner
        self.variant = variant
        self.conjuncts = conjuncts
        self.index_inner = index_inner

    def children(self) -> Sequence[PhysicalOp]:
        return (self.outer, self.inner)

    def name(self) -> str:
        kind = "IndexNLJoin" if self.index_inner else "NLJoin"
        return f"{kind}({self.variant.value})"


class PhysicalHashJoin(PhysicalOp):
    """Hash join with Orca's convention: probe on the left, build on the
    right (Section 7, lesson 2 — MySQL's inner hash join reverses this,
    and the plan converter performs the flip)."""

    def __init__(self, probe: PhysicalOp, build: PhysicalOp,
                 variant: JoinVariant, conjuncts: List[ast.Expr]) -> None:
        super().__init__()
        self.probe = probe
        self.build = build
        self.variant = variant
        self.conjuncts = conjuncts

    def children(self) -> Sequence[PhysicalOp]:
        return (self.probe, self.build)

    def name(self) -> str:
        return f"HashJoin({self.variant.value})"


class PhysicalGbAgg(PhysicalOp):
    def __init__(self, child: PhysicalOp, group_exprs: List[ast.Expr],
                 agg_calls: List[ast.AggCall], streaming: bool) -> None:
        super().__init__()
        self.child = child
        self.group_exprs = group_exprs
        self.agg_calls = agg_calls
        self.streaming = streaming

    def children(self) -> Sequence[PhysicalOp]:
        return (self.child,)

    def name(self) -> str:
        return "StreamAgg" if self.streaming else "HashAgg"


class PhysicalSort(PhysicalOp):
    def __init__(self, child: PhysicalOp,
                 order_items: List[ast.OrderItem]) -> None:
        super().__init__()
        self.child = child
        self.order_items = order_items

    def children(self) -> Sequence[PhysicalOp]:
        return (self.child,)


class PhysicalLimit(PhysicalOp):
    def __init__(self, child: PhysicalOp, limit: Optional[int],
                 offset: Optional[int]) -> None:
        super().__init__()
        self.child = child
        self.limit = limit
        self.offset = offset

    def children(self) -> Sequence[PhysicalOp]:
        return (self.child,)


def render_physical(op: PhysicalOp, indent: int = 0) -> str:
    """ASCII rendering of a physical plan (used in tests and examples)."""
    lines = ["  " * indent + op.describe()
             + f"  (cost={op.cost:.2f} rows={op.rows:.0f})"]
    for child in op.children():
        lines.append(render_physical(child, indent + 1))
    return "\n".join(lines)
