"""Orca's join-order search: GREEDY, EXHAUSTIVE, and EXHAUSTIVE2.

The paper runs Orca with the two dynamic-programming-based strategies
(Section 6.3): EXHAUSTIVE and EXHAUSTIVE2 — "its most thorough setting".
The model implemented here:

* ``GREEDY`` — cost-based left-deep greedy with hash/index-NL candidates;
* ``EXHAUSTIVE`` — memo DP over connected subsets where one join side is a
  single unit (zig-zag trees: bushy *build* sides of one table);
* ``EXHAUSTIVE2`` — memo DP over *all* connected partitions (full bushy
  trees).

All three share the memo, the histogram-backed cardinality estimates, and
the Orca cost model — so EXHAUSTIVE2 explores strictly more alternatives,
reproducing Table 1's compile-time behaviour (near-identical on TPC-H,
noticeably slower on the widest TPC-DS joins).

Beyond the DP-feasible width, per-component strategy selection moves to
the :mod:`repro.orca.largejoin` lattice (full DP → linearized DP → GOO →
greedy), chosen by component relation count and the remaining
:class:`repro.resilience.CompileBudget` deadline; a mid-search budget
exhaustion degrades to the best incumbent plan already in the memo
instead of raising into the MySQL fallback (see
:meth:`OrcaJoinSearch._search_component`).

Unlike the MySQL search (left-deep, NLJ-costed), every candidate here is
properly costed, including hash joins — the core reason Orca's plans win
on analytical queries.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import BudgetExceededError, OrcaError
from repro.mysql_optimizer.access_path import best_local_access, ref_access
from repro.mysql_optimizer.skeleton import AccessPlan
from repro.executor.plan import AccessMethod
from repro.orca import largejoin
from repro.orca.cost_model import OrcaCostModel
from repro.orca.largejoin import (
    DEFAULT_GOO_THRESHOLD,
    DEFAULT_LINDP_THRESHOLD,
    JoinStrategy,
)
from repro.orca.memo import Group, Memo
from repro.orca.operators import (
    JoinVariant,
    LogicalGet,
    PhysicalGet,
    PhysicalHashJoin,
    PhysicalNLJoin,
    PhysicalOp,
)
from repro.selectivity import SelectivityEstimator
from repro.sql import ast
from repro.sql.blocks import EntryKind, QueryBlock, referenced_entries


class JoinSearchMode(enum.Enum):
    GREEDY = "GREEDY"
    EXHAUSTIVE = "EXHAUSTIVE"
    EXHAUSTIVE2 = "EXHAUSTIVE2"


#: How often the full-DP subset enumeration probes the compile budget
#: (every ``2**k`` candidate subsets): connectivity filtering rejects the
#: overwhelming majority of subsets on sparse graphs, so waiting for the
#: next *connected* subset's check could stall past the deadline.
_BUDGET_PROBE_MASK = 0xFF


class SubEstimates:
    """Output rows/cost for derived and CTE sub-blocks."""

    def __init__(self, mapping: Optional[Dict[int, Tuple[float, float]]]
                 = None) -> None:
        self._mapping = mapping or {}

    def add(self, block_id: int, rows: float, cost: float) -> None:
        self._mapping[block_id] = (rows, cost)

    def get(self, block_id: int) -> Tuple[float, float]:
        return self._mapping.get(block_id, (1000.0, 1000.0))


def plan_unit(unit: LogicalGet, block: QueryBlock,
              estimator: SelectivityEstimator, cost_model: OrcaCostModel,
              sub_estimates: "SubEstimates",
              corr: FrozenSet[int] = frozenset()
              ) -> Tuple[AccessPlan, float, float, "PhysicalGet"]:
    """Plan one join unit standalone: (access, cost, rows, physical get).

    ``corr`` lists outer-query entries bound during execution; equalities
    against them can drive an index lookup (the Q17 subquery pattern).
    """
    entry = unit.descriptor.entry
    if entry.kind is EntryKind.BASE:
        access = best_local_access(block, entry, unit.conjuncts,
                                   estimator, cost_model)
        if corr:
            ref = ref_access(block, entry, unit.conjuncts, corr,
                             estimator, cost_model)
            if ref is not None and ref.est_cost < access.est_cost:
                access = ref
        consumed = {id(c) for c in access.consumed_conjuncts}
        residual = 1.0
        for conjunct in unit.conjuncts:
            if id(conjunct) not in consumed:
                residual *= estimator.conjunct_selectivity(block, conjunct)
        rows = max(0.5, access.est_rows * residual)
    else:
        sub_rows, sub_cost = sub_estimates.get(
            entry.sub_block.block_id if entry.sub_block else -1)
        method = AccessMethod.CTE_SCAN if entry.kind is EntryKind.CTE \
            else AccessMethod.MATERIALIZE
        access = AccessPlan(method=method, est_rows=sub_rows,
                            est_cost=sub_cost + sub_rows * 0.05)
        residual = 1.0
        for conjunct in unit.conjuncts:
            residual *= estimator.conjunct_selectivity(block, conjunct)
        rows = max(0.5, sub_rows * residual)
    get = PhysicalGet(unit.descriptor, access, list(unit.conjuncts))
    get.cost = access.est_cost
    get.rows = rows
    return access, access.est_cost, rows, get


class OrcaJoinSearch:
    """Join ordering for one block's inner-join core."""

    def __init__(self, units: List[LogicalGet], conjuncts: List[ast.Expr],
                 block: QueryBlock, estimator: SelectivityEstimator,
                 cost_model: OrcaCostModel, sub_estimates: SubEstimates,
                 corr: FrozenSet[int], mode: JoinSearchMode,
                 memo: Memo, budget=None,
                 enable_pruning: bool = True,
                 strategy_policy: str = "adaptive",
                 lindp_threshold: int = DEFAULT_LINDP_THRESHOLD,
                 goo_threshold: int = DEFAULT_GOO_THRESHOLD) -> None:
        self.units = units
        self.conjuncts = conjuncts
        self.block = block
        self.estimator = estimator
        self.cost_model = cost_model
        self.sub_estimates = sub_estimates
        self.corr = corr
        self.mode = mode
        self.memo = memo
        #: Optional :class:`repro.resilience.CompileBudget`; checked as
        #: the search expands, so runaway compilations abort the detour
        #: (``BudgetExceededError``) instead of hanging.
        self.budget = budget
        #: Branch-and-bound pruning: skip costing a candidate join pair
        #: when an admissible lower bound (the inputs' best costs plus
        #: the cheapest join step the pair could possibly take — see
        #: :meth:`_pair_lower_bound`) already reaches the target group's
        #: best complete plan.  The DP seeds bounds from a cheap
        #: left-deep first pass, so pruning bites from the first
        #: expansion.  Sound: a pruned candidate can never beat the
        #: incumbent, so the chosen plan's cost equals the unpruned
        #: search's choice.
        self.enable_pruning = enable_pruning
        #: Strategy-selector configuration (the ``orca_join_strategy`` /
        #: ``orca_lindp_threshold`` / ``orca_goo_threshold`` knobs).
        self.strategy_policy = strategy_policy
        self.lindp_threshold = lindp_threshold
        self.goo_threshold = goo_threshold
        #: Search-effort counters surfaced as ``memo_search`` span
        #: attributes: DP subsets expanded, left-deep chains costed, and
        #: candidates skipped by cost-bound pruning.
        self.expansions = 0
        self.chains_costed = 0
        self.pruned_candidates = 0
        #: One ``(strategy_name, component_size)`` entry per multi-unit
        #: component searched, and how often budget exhaustion degraded a
        #: component to its best incumbent plan.
        self.strategies: List[Tuple[str, int]] = []
        self.budget_degradations = 0
        self._entry_sets = [frozenset({unit.descriptor.entry.entry_id})
                            for unit in units]
        self._local: List[Tuple[AccessPlan, float, float, PhysicalGet]] = []
        for index, unit in enumerate(units):
            self._local.append(self._plan_unit(index))
        # Per-conjunct (touched unit set, fully-mapped flag), computed
        # once: ``referenced_entries`` walks the expression tree, and the
        # large-join searches consult conjunct applicability O(n^2) to
        # O(n^3) times per component.  Each entry id belongs to exactly
        # one unit, so entry-set tests reduce to unit-set tests:
        # refs `subset of` entries(S)  <=>  mapped and units `subset of` S.
        self._conjunct_units: List[Tuple[FrozenSet[int], bool]] = []
        all_entries: set = set()
        for entries in self._entry_sets:
            all_entries |= entries
        for conjunct in conjuncts:
            refs = referenced_entries(conjunct) - self.corr
            touched = frozenset(
                index for index, entries in enumerate(self._entry_sets)
                if entries & refs)
            mapped = bool(refs) and refs.issubset(all_entries)
            self._conjunct_units.append((touched, mapped))
        self._edges = self._build_edges()
        self._rows_cache: Dict[FrozenSet[int], float] = {}
        self._conn_cache: Dict[FrozenSet[int], bool] = {}
        self._join_sel_cache: Dict[int, float] = {}
        self._neighbor_cache: Optional[Dict[int, FrozenSet[int]]] = None
        self._pair_sel_cache: Dict[FrozenSet[int],
                                   Dict[Tuple[int, int], float]] = {}

    def _check_budget(self) -> None:
        if self.budget is not None:
            self.budget.check(self.memo.group_count)

    # -- unit-level planning ----------------------------------------------------

    def _plan_unit(self, index: int
                   ) -> Tuple[AccessPlan, float, float, PhysicalGet]:
        return plan_unit(self.units[index], self.block, self.estimator,
                         self.cost_model, self.sub_estimates, self.corr)

    def _build_edges(self) -> List[FrozenSet[int]]:
        return [units for units, __ in self._conjunct_units
                if len(units) >= 2]

    def _connected(self, subset: FrozenSet[int]) -> bool:
        if len(subset) <= 1:
            return True
        cached = self._conn_cache.get(subset)
        if cached is not None:
            return cached
        result = self._connected_uncached(subset)
        self._conn_cache[subset] = result
        return result

    def _connected_uncached(self, subset: FrozenSet[int]) -> bool:
        seen = {next(iter(subset))}
        frontier = list(seen)
        while frontier:
            current = frontier.pop()
            for edge in self._edges:
                if current in edge:
                    for other in edge:
                        if other in subset and other not in seen:
                            seen.add(other)
                            frontier.append(other)
        return len(seen) == len(subset)

    def _entries_of(self, subset: FrozenSet[int]) -> FrozenSet[int]:
        entries: set = set()
        for index in subset:
            entries |= self._entry_sets[index]
        return frozenset(entries)

    # -- cardinality -----------------------------------------------------------------

    def _join_selectivity(self, conjunct_index: int) -> float:
        cached = self._join_sel_cache.get(conjunct_index)
        if cached is None:
            cached = self.estimator.join_selectivity(
                self.block, self.conjuncts[conjunct_index])
            self._join_sel_cache[conjunct_index] = cached
        return cached

    def subset_rows(self, subset: FrozenSet[int]) -> float:
        cached = self._rows_cache.get(subset)
        if cached is not None:
            return cached
        rows = 1.0
        for index in subset:
            rows *= self._local[index][2]
        for conjunct_index, (units, mapped) in \
                enumerate(self._conjunct_units):
            if mapped and len(units) >= 2 and units <= subset:
                rows *= self._join_selectivity(conjunct_index)
        rows = max(1e-3, rows)
        self._rows_cache[subset] = rows
        return rows

    def _cross_conjuncts(self, side_a: FrozenSet[int],
                         side_b: FrozenSet[int]) -> List[ast.Expr]:
        visible = side_a | side_b
        result = []
        for conjunct_index, (units, mapped) in \
                enumerate(self._conjunct_units):
            if mapped and units and units <= visible \
                    and units & side_a and units & side_b:
                result.append(self.conjuncts[conjunct_index])
        return result

    def pair_selectivities(self, component: FrozenSet[int]
                           ) -> Dict[Tuple[int, int], float]:
        """Combined selectivity of the two-unit conjuncts per unit pair,
        keyed ``(low, high)`` — the IKKBZ/GOO steering matrix.  Conjuncts
        spanning three or more units are left to :meth:`subset_rows`,
        which settles cardinalities exactly when a subset materializes.
        """
        cached = self._pair_sel_cache.get(component)
        if cached is not None:
            return cached
        result: Dict[Tuple[int, int], float] = {}
        for conjunct_index, (units, mapped) in \
                enumerate(self._conjunct_units):
            if mapped and len(units) == 2 and units <= component:
                low, high = sorted(units)
                result[(low, high)] = result.get((low, high), 1.0) \
                    * self._join_selectivity(conjunct_index)
        self._pair_sel_cache[component] = result
        return result

    def unit_neighbors(self) -> Dict[int, FrozenSet[int]]:
        """Units adjacent to each unit in the join graph."""
        if self._neighbor_cache is None:
            neighbors: Dict[int, set] = {
                index: set() for index in range(len(self.units))}
            for edge in self._edges:
                for member in edge:
                    neighbors[member] |= edge - {member}
            self._neighbor_cache = {index: frozenset(adjacent)
                                    for index, adjacent
                                    in neighbors.items()}
        return self._neighbor_cache

    def _has_equi(self, conjuncts: List[ast.Expr], entries_a: FrozenSet[int],
                  entries_b: FrozenSet[int]) -> bool:
        for conjunct in conjuncts:
            if isinstance(conjunct, ast.BinaryExpr) and \
                    conjunct.op is ast.BinOp.EQ:
                left = referenced_entries(conjunct.left) - self.corr
                right = referenced_entries(conjunct.right) - self.corr
                if not left or not right:
                    continue
                if (left.issubset(entries_a) and right.issubset(entries_b)) \
                        or (left.issubset(entries_b)
                            and right.issubset(entries_a)):
                    return True
        return False

    # -- search entry point --------------------------------------------------------------

    def search(self) -> Tuple[PhysicalOp, float, float]:
        if not self.units:
            raise OrcaError("join search requires at least one unit")
        if len(self.units) == 1:
            __, cost, rows, get = self._local[0]
            group = self.memo.group(frozenset({0}))
            group.rows = rows
            group.offer(get, cost, costed=False)
            return get, cost, rows
        components = self._components()
        plans = [self._search_component(component)
                 for component in components]
        plans.sort(key=lambda item: item[2])  # combine smallest first
        plan, cost, rows = plans[0]
        for other_plan, other_cost, other_rows in plans[1:]:
            out_rows = rows * other_rows
            join = PhysicalHashJoin(plan, other_plan, JoinVariant.INNER, [])
            cost = cost + other_cost + self.cost_model.hash_join_cost(
                other_rows, rows, out_rows)
            join.cost, join.rows = cost, out_rows
            plan, rows = join, out_rows
        return plan, cost, rows

    def _components(self) -> List[FrozenSet[int]]:
        remaining = set(range(len(self.units)))
        components: List[FrozenSet[int]] = []
        while remaining:
            seed = next(iter(remaining))
            seen = {seed}
            frontier = [seed]
            while frontier:
                current = frontier.pop()
                for edge in self._edges:
                    if current in edge:
                        for other in edge:
                            if other in remaining and other not in seen:
                                seen.add(other)
                                frontier.append(other)
            components.append(frozenset(seen))
            remaining -= seen
        return components

    def _remaining_seconds(self) -> Optional[float]:
        if self.budget is None:
            return None
        return self.budget.remaining_seconds()

    def _search_component(self, component: FrozenSet[int]
                          ) -> Tuple[PhysicalOp, float, float]:
        if len(component) == 1:
            index = next(iter(component))
            __, cost, rows, get = self._local[index]
            group = self.memo.group(frozenset({index}))
            group.rows = rows
            group.offer(get, cost, costed=False)
            return get, cost, rows
        strategy = largejoin.select_strategy(
            len(component), self.mode is JoinSearchMode.GREEDY,
            self.strategy_policy, self.lindp_threshold,
            self.goo_threshold, self._remaining_seconds())
        self.strategies.append((strategy.value, len(component)))
        try:
            return self._run_strategy(strategy, component)
        except BudgetExceededError:
            # Budget ran out mid-search.  Every non-greedy strategy
            # seeds a complete incumbent into the final group before its
            # main loop, so degrade to it: the statement gets a valid
            # (merely less-polished) Orca plan instead of a MySQL
            # fallback.  With no incumbent (e.g. a memo-group cap so
            # tight even seeding was cut short) the error propagates and
            # containment maps it to FallbackReason.BUDGET_EXCEEDED as
            # before.
            key = frozenset(component)
            if self.budget is not None and self.memo.has_group(key):
                group = self.memo.group(key)
                if group.best_plan is not None:
                    self.budget.degrade()
                    self.budget_degradations += 1
                    return group.best_plan, group.best_cost, group.rows
            raise

    def _run_strategy(self, strategy: JoinStrategy,
                      component: FrozenSet[int]
                      ) -> Tuple[PhysicalOp, float, float]:
        if strategy is JoinStrategy.GREEDY:
            return self._greedy(component)
        if strategy is JoinStrategy.LINDP:
            return largejoin.lindp_search(self, component)
        if strategy is JoinStrategy.GOO:
            return largejoin.goo_search(self, component)
        return self._dp(component)

    # -- group plumbing shared with the largejoin strategies ---------------------

    def ensure_singleton(self, index: int) -> Group:
        """Memo group for one unit, seeded with its standalone plan."""
        group = self.memo.group(frozenset({index}))
        if group.best_plan is None:
            __, cost, rows, get = self._local[index]
            group.rows = rows
            group.offer(get, cost, costed=False)
        return group

    def join_groups(self, union: FrozenSet[int], side_a: FrozenSet[int],
                    side_b: FrozenSet[int]) -> Group:
        """Offer both orientations of A join B into ``union``'s group.

        Guaranteed to leave a plan in the group: when neither
        orientation yields a candidate (multi-unit x multi-unit with no
        equi conjunct — hash needs an equi key, NL rescan a singleton
        inner), B is absorbed into A one unit at a time instead.  Each
        absorption step has a singleton inner, so an NL-rescan candidate
        always exists, and the spanning conjuncts — including the
        non-equi ones a cross join would silently drop — are applied at
        the step where their units complete.
        """
        group = self.memo.group(union)
        group.rows = self.subset_rows(union)
        group_a = self.memo.group(side_a)
        group_b = self.memo.group(side_b)
        self._offer_joins_bounded(group, group_a, group_b)
        self._offer_joins_bounded(group, group_b, group_a)
        if group.best_plan is None:
            current = side_a
            for index in sorted(side_b):
                current = self.join_groups(
                    current | {index}, current, frozenset({index})).key
        return group

    # -- dynamic programming ----------------------------------------------------------------

    def _dp(self, component: FrozenSet[int]
            ) -> Tuple[PhysicalOp, float, float]:
        members = sorted(component)
        for index in members:
            self.ensure_singleton(index)
        # A cheap first pass populates the chain-prefix groups (and the
        # final group) with complete plans: budget degradation has an
        # incumbent from the very start, and — with pruning on — the
        # branch-and-bound upper bounds have something to bite on from
        # the first DP expansion.  Seeding runs in the unpruned search
        # too so the pruning A/B comparison sees the identical candidate
        # space (seeds can beat the connectivity-restricted DP outright,
        # e.g. an IKKBZ chain whose prefix is disconnected under the DP's
        # hyperedge connectivity).
        self._seed_bounds(component)
        full_bushy = self.mode is JoinSearchMode.EXHAUSTIVE2
        probe = 0
        for size in range(2, len(members) + 1):
            for combo in itertools.combinations(members, size):
                # Probe the budget on candidate subsets, not only on the
                # connected ones _expand_subset sees: on sparse graphs
                # connectivity rejects almost every subset, and a forced
                # full DP past the selector cutoff would otherwise churn
                # through millions of connectivity checks between
                # deadline checks.
                probe += 1
                if not probe & _BUDGET_PROBE_MASK:
                    self._check_budget()
                subset = frozenset(combo)
                if not self._connected(subset):
                    continue
                self._expand_subset(subset, full_bushy)
        final = self.memo.group(frozenset(component))
        if final.best_plan is None:
            return self._greedy(component)
        return final.best_plan, final.best_cost, final.rows

    def _seed_bounds(self, component: FrozenSet[int],
                     with_incumbents: bool = True) -> None:
        """Seed complete plans for branch-and-bound and degradation.

        Costs one connectivity-respecting left-deep chain, cheapest
        local unit first (n-1 join steps versus the DP's exponential
        candidate count — negligible).  With ``with_incumbents``, the
        IKKBZ-linearized chain and a GOO pass are layered on top: the
        bushy GOO incumbent is usually far tighter than any left-deep
        chain, so the ≤``lindp_threshold`` DP prunes harder from its
        first expansion.  (GOO's own seeding passes ``False`` — it
        *is* the incumbent builder.)
        """
        remaining = set(component)
        neighbors = self.unit_neighbors()
        first = min(remaining,
                    key=lambda index: (self._local[index][2],
                                       self._local[index][1]))
        order = [first]
        remaining.discard(first)
        frontier = set(neighbors[first]) & remaining
        while remaining:
            candidates = frontier or remaining
            next_index = min(candidates,
                             key=lambda index: (self._local[index][2],
                                                self._local[index][1]))
            order.append(next_index)
            remaining.discard(next_index)
            frontier.discard(next_index)
            frontier |= set(neighbors[next_index]) & remaining
        self._cost_chain(order)
        if with_incumbents and len(component) >= 4:
            self._cost_chain(largejoin.ikkbz_order(self, component))
            largejoin.goo_search(self, component)

    def _expand_subset(self, subset: FrozenSet[int],
                       full_bushy: bool) -> None:
        self._check_budget()
        self.expansions += 1
        group = self.memo.group(subset)
        group.rows = self.subset_rows(subset)
        members = sorted(subset)
        if full_bushy:
            partitions = self._all_partitions(members)
        else:
            partitions = [(frozenset(subset - {index}), frozenset({index}))
                          for index in members]
        for side_a, side_b in partitions:
            if not self._connected(side_a) or not self._connected(side_b):
                continue
            group_a = self.memo.group(side_a)
            group_b = self.memo.group(side_b)
            if group_a.best_plan is None or group_b.best_plan is None:
                continue
            self._offer_joins_bounded(group, group_a, group_b)
            self._offer_joins_bounded(group, group_b, group_a)

    def _offer_joins_bounded(self, group, group_a, group_b) -> None:
        """Offer joins of A and B unless branch-and-bound rules them out.

        ``_pair_lower_bound`` underestimates every candidate this
        orientation could offer; once it reaches the group's best
        complete plan no candidate from this pair can win, so none is
        built or costed.
        """
        if self.enable_pruning and group.best_plan is not None and \
                self._pair_lower_bound(group, group_a, group_b) \
                >= group.best_cost:
            self.pruned_candidates += 1
            group.note_pruned()
            return
        self._offer_joins(group, group_a, group_b)

    def _pair_lower_bound(self, group, group_a, group_b) -> float:
        """An admissible lower bound for joining A (outer) with B.

        Mirrors exactly the candidate set :meth:`_offer_joins` builds
        for this orientation: a hash join costs its inputs plus the
        (deterministic, rows-only) hash formula; a singleton inner side
        additionally allows an index NL join — which omits the inner
        group's cost but pays at least one B-tree descent per outer
        row — and an NL rescan of the inner unit's known access cost.
        The floor formulas don't count as cost-model evaluations, which
        is the point: a pruned pair does no costing work at all.
        """
        rows_a = group_a.rows
        rows_b = group_b.rows
        inputs = group_a.best_cost + group_b.best_cost
        bound = inputs + self.cost_model.hash_join_floor(
            rows_b, rows_a, group.rows)
        if len(group_b.key) == 1:
            unit_cost = self._local[next(iter(group_b.key))][1]
            bound = min(
                bound,
                inputs + rows_a * unit_cost,
                group_a.best_cost
                + self.cost_model.index_nljoin_floor(rows_a))
        return bound

    def _all_partitions(self, members: List[int]):
        """All 2-way partitions of the member list (first side holds the
        lowest member to halve the enumeration; both orientations are
        offered by the caller)."""
        rest = members[1:]
        first = members[0]
        partitions = []
        for mask in range(0, 1 << len(rest)):
            side_a = {first}
            side_b = set()
            for bit, member in enumerate(rest):
                if mask & (1 << bit):
                    side_a.add(member)
                else:
                    side_b.add(member)
            if side_b:
                partitions.append((frozenset(side_a), frozenset(side_b)))
        return partitions

    def _prune_candidate(self, group, floor: float) -> bool:
        """Candidate-level branch and bound: skip one candidate whose
        cost floor already reaches the group's incumbent.  Re-read the
        incumbent per candidate — offers earlier in the same pair may
        have lowered it."""
        if not self.enable_pruning or floor < group.best_cost:
            return False
        self.pruned_candidates += 1
        group.note_pruned()
        return True

    def _offer_joins(self, group, group_a, group_b) -> None:
        """Offer join alternatives with A as the row-driving (outer) side."""
        subset = group.key
        out_rows = group.rows
        rows_a = group_a.rows
        rows_b = group_b.rows
        inputs = group_a.best_cost + group_b.best_cost
        plan_a = group_a.best_plan
        plan_b = group_b.best_plan
        cross = self._cross_conjuncts(group_a.key, group_b.key)
        entries_a = self._entries_of(group_a.key)
        entries_b = self._entries_of(group_b.key)

        # Hash join: probe with A, build with B.
        if self._has_equi(cross, entries_a, entries_b) and \
                not self._prune_candidate(
                    group, inputs + self.cost_model.hash_join_floor(
                        rows_b, rows_a, out_rows)):
            cost = (inputs
                    + self.cost_model.hash_join_cost(rows_b, rows_a,
                                                     out_rows))
            join = PhysicalHashJoin(plan_a, plan_b, JoinVariant.INNER, cross)
            join.cost, join.rows = cost, out_rows
            group.offer(join, cost)

        # Index NL join: only when the inner side is a single base unit.
        if len(group_b.key) == 1:
            index = next(iter(group_b.key))
            unit = self.units[index]
            entry = unit.descriptor.entry
            if entry.kind is EntryKind.BASE and not self._prune_candidate(
                    group, group_a.best_cost
                    + self.cost_model.index_nljoin_floor(rows_a)):
                ref = ref_access(self.block, entry,
                                 unit.conjuncts + cross,
                                 entries_a | self.corr,
                                 self.estimator, self.cost_model)
                if ref is not None:
                    cost = (group_a.best_cost
                            + self.cost_model.index_nljoin_cost(
                                rows_a, ref.est_cost))
                    inner_get = PhysicalGet(unit.descriptor, ref,
                                            list(unit.conjuncts))
                    inner_get.cost = ref.est_cost
                    inner_get.rows = ref.est_rows
                    join = PhysicalNLJoin(plan_a, inner_get,
                                          JoinVariant.INNER, cross,
                                          index_inner=True)
                    join.cost, join.rows = cost, out_rows
                    group.offer(join, cost)
            # Plain NL rescan (cartesian or non-equi) fallback.
            __, unit_cost, __, __ = self._local[index]
            if not self._prune_candidate(group,
                                         inputs + rows_a * unit_cost):
                cost = (inputs
                        + self.cost_model.nljoin_rescan_cost(rows_a,
                                                             unit_cost))
                join = PhysicalNLJoin(plan_a, plan_b, JoinVariant.INNER,
                                      cross)
                join.cost, join.rows = cost, out_rows
                group.offer(join, cost)

    # -- greedy and polish -------------------------------------------------------------------

    def _greedy(self, component: FrozenSet[int]
                ) -> Tuple[PhysicalOp, float, float]:
        order = self._greedy_order(component)
        return self._cost_chain(order)

    def _greedy_order(self, component: FrozenSet[int]) -> List[int]:
        remaining = set(component)
        # Drive from the cheapest standalone unit among well-connected ones.
        order: List[int] = []
        first = min(remaining,
                    key=lambda index: (self._local[index][2],
                                       self._local[index][1]))
        order.append(first)
        remaining.discard(first)
        while remaining:
            placed = frozenset(order)
            candidates = [index for index in remaining
                          if self._connected(placed | {index})]
            if not candidates:
                candidates = list(remaining)
            best_index = None
            best_cost = None
            for index in candidates:
                __, cost, rows = self._cost_chain(order + [index])
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_index = index
            order.append(best_index)
            remaining.discard(best_index)
        return order

    def _cost_chain(self, order: List[int]
                    ) -> Tuple[PhysicalOp, float, float]:
        """Cost a left-deep chain, choosing the best method per step."""
        self._check_budget()
        self.chains_costed += 1
        first = order[0]
        key = frozenset({first})
        group = self.memo.group(key)
        access, cost, rows, get = self._local[first]
        group.rows = rows
        group.offer(get, cost, costed=False)
        plan: PhysicalOp = group.best_plan
        total_cost = group.best_cost
        placed = {first}
        for index in order[1:]:
            new_key = frozenset(placed | {index})
            new_group = self.memo.group(new_key)
            new_group.rows = self.subset_rows(new_key)
            pseudo_a = self.memo.group(frozenset(placed))
            pseudo_a.rows = self.subset_rows(frozenset(placed))
            if pseudo_a.best_plan is None or \
                    pseudo_a.best_cost > total_cost:
                pseudo_a.best_plan = plan
                pseudo_a.best_cost = total_cost
            group_b = self.memo.group(frozenset({index}))
            if group_b.best_plan is None:
                access_b, cost_b, rows_b, get_b = self._local[index]
                group_b.rows = rows_b
                group_b.offer(get_b, cost_b, costed=False)
            self._offer_joins(new_group, pseudo_a, group_b)
            self._offer_joins(new_group, group_b, pseudo_a)
            if new_group.best_plan is None:
                raise OrcaError("could not join unit into chain")
            plan = new_group.best_plan
            total_cost = new_group.best_cost
            placed.add(index)
        final = frozenset(placed)
        return plan, total_cost, self.subset_rows(final)
