"""Orca's join-order search: GREEDY, EXHAUSTIVE, and EXHAUSTIVE2.

The paper runs Orca with the two dynamic-programming-based strategies
(Section 6.3): EXHAUSTIVE and EXHAUSTIVE2 — "its most thorough setting".
The model implemented here:

* ``GREEDY`` — cost-based left-deep greedy with hash/index-NL candidates;
* ``EXHAUSTIVE`` — memo DP over connected subsets where one join side is a
  single unit (zig-zag trees: bushy *build* sides of one table);
* ``EXHAUSTIVE2`` — memo DP over *all* connected partitions (full bushy
  trees), plus an insertion-polish pass when the join is too wide for DP.

All three share the memo, the histogram-backed cardinality estimates, and
the Orca cost model — so EXHAUSTIVE2 explores strictly more alternatives,
reproducing Table 1's compile-time behaviour (near-identical on TPC-H,
noticeably slower on the widest TPC-DS joins).

Unlike the MySQL search (left-deep, NLJ-costed), every candidate here is
properly costed, including hash joins — the core reason Orca's plans win
on analytical queries.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import OrcaError
from repro.mysql_optimizer.access_path import best_local_access, ref_access
from repro.mysql_optimizer.skeleton import AccessPlan
from repro.executor.plan import AccessMethod
from repro.orca.cost_model import OrcaCostModel
from repro.orca.memo import Memo
from repro.orca.operators import (
    JoinVariant,
    LogicalGet,
    PhysicalGet,
    PhysicalHashJoin,
    PhysicalNLJoin,
    PhysicalOp,
)
from repro.selectivity import SelectivityEstimator
from repro.sql import ast
from repro.sql.blocks import EntryKind, QueryBlock, referenced_entries


class JoinSearchMode(enum.Enum):
    GREEDY = "GREEDY"
    EXHAUSTIVE = "EXHAUSTIVE"
    EXHAUSTIVE2 = "EXHAUSTIVE2"


#: DP is feasible up to this many units; beyond it the searches fall back
#: (EXHAUSTIVE -> greedy, EXHAUSTIVE2 -> greedy + insertion polish).
DP_LIMIT = 12
#: Polish rounds for the EXHAUSTIVE2 fallback on very wide joins.
POLISH_ROUNDS = 6


class SubEstimates:
    """Output rows/cost for derived and CTE sub-blocks."""

    def __init__(self, mapping: Optional[Dict[int, Tuple[float, float]]]
                 = None) -> None:
        self._mapping = mapping or {}

    def add(self, block_id: int, rows: float, cost: float) -> None:
        self._mapping[block_id] = (rows, cost)

    def get(self, block_id: int) -> Tuple[float, float]:
        return self._mapping.get(block_id, (1000.0, 1000.0))


def plan_unit(unit: LogicalGet, block: QueryBlock,
              estimator: SelectivityEstimator, cost_model: OrcaCostModel,
              sub_estimates: "SubEstimates",
              corr: FrozenSet[int] = frozenset()
              ) -> Tuple[AccessPlan, float, float, "PhysicalGet"]:
    """Plan one join unit standalone: (access, cost, rows, physical get).

    ``corr`` lists outer-query entries bound during execution; equalities
    against them can drive an index lookup (the Q17 subquery pattern).
    """
    entry = unit.descriptor.entry
    if entry.kind is EntryKind.BASE:
        access = best_local_access(block, entry, unit.conjuncts,
                                   estimator, cost_model)
        if corr:
            ref = ref_access(block, entry, unit.conjuncts, corr,
                             estimator, cost_model)
            if ref is not None and ref.est_cost < access.est_cost:
                access = ref
        consumed = {id(c) for c in access.consumed_conjuncts}
        residual = 1.0
        for conjunct in unit.conjuncts:
            if id(conjunct) not in consumed:
                residual *= estimator.conjunct_selectivity(block, conjunct)
        rows = max(0.5, access.est_rows * residual)
    else:
        sub_rows, sub_cost = sub_estimates.get(
            entry.sub_block.block_id if entry.sub_block else -1)
        method = AccessMethod.CTE_SCAN if entry.kind is EntryKind.CTE \
            else AccessMethod.MATERIALIZE
        access = AccessPlan(method=method, est_rows=sub_rows,
                            est_cost=sub_cost + sub_rows * 0.05)
        residual = 1.0
        for conjunct in unit.conjuncts:
            residual *= estimator.conjunct_selectivity(block, conjunct)
        rows = max(0.5, sub_rows * residual)
    get = PhysicalGet(unit.descriptor, access, list(unit.conjuncts))
    get.cost = access.est_cost
    get.rows = rows
    return access, access.est_cost, rows, get


class OrcaJoinSearch:
    """Join ordering for one block's inner-join core."""

    def __init__(self, units: List[LogicalGet], conjuncts: List[ast.Expr],
                 block: QueryBlock, estimator: SelectivityEstimator,
                 cost_model: OrcaCostModel, sub_estimates: SubEstimates,
                 corr: FrozenSet[int], mode: JoinSearchMode,
                 memo: Memo, budget=None,
                 enable_pruning: bool = True) -> None:
        self.units = units
        self.conjuncts = conjuncts
        self.block = block
        self.estimator = estimator
        self.cost_model = cost_model
        self.sub_estimates = sub_estimates
        self.corr = corr
        self.mode = mode
        self.memo = memo
        #: Optional :class:`repro.resilience.CompileBudget`; checked as
        #: the search expands, so runaway compilations abort the detour
        #: (``BudgetExceededError``) instead of hanging.
        self.budget = budget
        #: Branch-and-bound pruning: skip costing a candidate join pair
        #: when an admissible lower bound (the inputs' best costs plus
        #: the cheapest join step the pair could possibly take — see
        #: :meth:`_pair_lower_bound`) already reaches the target group's
        #: best complete plan.  The DP seeds bounds from a cheap
        #: left-deep first pass, so pruning bites from the first
        #: expansion.  Sound: a pruned candidate can never beat the
        #: incumbent, so the chosen plan's cost equals the unpruned
        #: search's choice.
        self.enable_pruning = enable_pruning
        #: Search-effort counters surfaced as ``memo_search`` span
        #: attributes: DP subsets expanded, left-deep chains costed, and
        #: candidates skipped by cost-bound pruning.
        self.expansions = 0
        self.chains_costed = 0
        self.pruned_candidates = 0
        self._entry_sets = [frozenset({unit.descriptor.entry.entry_id})
                            for unit in units]
        self._local: List[Tuple[AccessPlan, float, float, PhysicalGet]] = []
        for index, unit in enumerate(units):
            self._local.append(self._plan_unit(index))
        self._edges = self._build_edges()
        self._rows_cache: Dict[FrozenSet[int], float] = {}
        self._conn_cache: Dict[FrozenSet[int], bool] = {}

    def _check_budget(self) -> None:
        if self.budget is not None:
            self.budget.check(self.memo.group_count)

    # -- unit-level planning ----------------------------------------------------

    def _plan_unit(self, index: int
                   ) -> Tuple[AccessPlan, float, float, PhysicalGet]:
        return plan_unit(self.units[index], self.block, self.estimator,
                         self.cost_model, self.sub_estimates, self.corr)

    def _build_edges(self) -> List[FrozenSet[int]]:
        edges: List[FrozenSet[int]] = []
        for conjunct in self.conjuncts:
            refs = referenced_entries(conjunct) - self.corr
            touched = frozenset(
                index for index, entries in enumerate(self._entry_sets)
                if entries & refs)
            if len(touched) >= 2:
                edges.append(touched)
        return edges

    def _connected(self, subset: FrozenSet[int]) -> bool:
        if len(subset) <= 1:
            return True
        cached = self._conn_cache.get(subset)
        if cached is not None:
            return cached
        result = self._connected_uncached(subset)
        self._conn_cache[subset] = result
        return result

    def _connected_uncached(self, subset: FrozenSet[int]) -> bool:
        seen = {next(iter(subset))}
        frontier = list(seen)
        while frontier:
            current = frontier.pop()
            for edge in self._edges:
                if current in edge:
                    for other in edge:
                        if other in subset and other not in seen:
                            seen.add(other)
                            frontier.append(other)
        return len(seen) == len(subset)

    def _entries_of(self, subset: FrozenSet[int]) -> FrozenSet[int]:
        entries: set = set()
        for index in subset:
            entries |= self._entry_sets[index]
        return frozenset(entries)

    # -- cardinality -----------------------------------------------------------------

    def subset_rows(self, subset: FrozenSet[int]) -> float:
        cached = self._rows_cache.get(subset)
        if cached is not None:
            return cached
        rows = 1.0
        for index in subset:
            rows *= self._local[index][2]
        entries = self._entries_of(subset)
        for conjunct in self.conjuncts:
            refs = referenced_entries(conjunct) - self.corr
            if not refs or not refs.issubset(entries):
                continue
            touched = sum(1 for index in subset
                          if self._entry_sets[index] & refs)
            if touched >= 2:
                rows *= self.estimator.join_selectivity(self.block, conjunct)
        rows = max(1e-3, rows)
        self._rows_cache[subset] = rows
        return rows

    def _cross_conjuncts(self, side_a: FrozenSet[int],
                         side_b: FrozenSet[int]) -> List[ast.Expr]:
        entries_a = self._entries_of(side_a)
        entries_b = self._entries_of(side_b)
        visible = entries_a | entries_b | self.corr
        result = []
        for conjunct in self.conjuncts:
            refs = referenced_entries(conjunct) - self.corr
            if refs and refs.issubset(visible) \
                    and refs & entries_a and refs & entries_b:
                result.append(conjunct)
        return result

    def _has_equi(self, conjuncts: List[ast.Expr], entries_a: FrozenSet[int],
                  entries_b: FrozenSet[int]) -> bool:
        for conjunct in conjuncts:
            if isinstance(conjunct, ast.BinaryExpr) and \
                    conjunct.op is ast.BinOp.EQ:
                left = referenced_entries(conjunct.left) - self.corr
                right = referenced_entries(conjunct.right) - self.corr
                if not left or not right:
                    continue
                if (left.issubset(entries_a) and right.issubset(entries_b)) \
                        or (left.issubset(entries_b)
                            and right.issubset(entries_a)):
                    return True
        return False

    # -- search entry point --------------------------------------------------------------

    def search(self) -> Tuple[PhysicalOp, float, float]:
        if not self.units:
            raise OrcaError("join search requires at least one unit")
        if len(self.units) == 1:
            __, cost, rows, get = self._local[0]
            group = self.memo.group(frozenset({0}))
            group.rows = rows
            group.offer(get, cost, costed=False)
            return get, cost, rows
        components = self._components()
        plans = [self._search_component(component)
                 for component in components]
        plans.sort(key=lambda item: item[2])  # combine smallest first
        plan, cost, rows = plans[0]
        for other_plan, other_cost, other_rows in plans[1:]:
            out_rows = rows * other_rows
            join = PhysicalHashJoin(plan, other_plan, JoinVariant.INNER, [])
            cost = cost + other_cost + self.cost_model.hash_join_cost(
                other_rows, rows, out_rows)
            join.cost, join.rows = cost, out_rows
            plan, rows = join, out_rows
        return plan, cost, rows

    def _components(self) -> List[FrozenSet[int]]:
        remaining = set(range(len(self.units)))
        components: List[FrozenSet[int]] = []
        while remaining:
            seed = next(iter(remaining))
            seen = {seed}
            frontier = [seed]
            while frontier:
                current = frontier.pop()
                for edge in self._edges:
                    if current in edge:
                        for other in edge:
                            if other in remaining and other not in seen:
                                seen.add(other)
                                frontier.append(other)
            components.append(frozenset(seen))
            remaining -= seen
        return components

    def _search_component(self, component: FrozenSet[int]
                          ) -> Tuple[PhysicalOp, float, float]:
        if len(component) == 1:
            index = next(iter(component))
            __, cost, rows, get = self._local[index]
            group = self.memo.group(frozenset({index}))
            group.rows = rows
            group.offer(get, cost, costed=False)
            return get, cost, rows
        if self.mode is JoinSearchMode.GREEDY or len(component) > DP_LIMIT:
            plan, cost, rows = self._greedy(component)
            if self.mode is JoinSearchMode.EXHAUSTIVE2 and \
                    len(component) > DP_LIMIT:
                plan, cost, rows = self._polish(component, plan, cost, rows)
            return plan, cost, rows
        return self._dp(component)

    # -- dynamic programming ----------------------------------------------------------------

    def _dp(self, component: FrozenSet[int]
            ) -> Tuple[PhysicalOp, float, float]:
        members = sorted(component)
        # Seed singleton groups.
        for index in members:
            key = frozenset({index})
            group = self.memo.group(key)
            access, cost, rows, get = self._local[index]
            group.rows = rows
            group.offer(get, cost, costed=False)
        if self.enable_pruning:
            # A cheap left-deep first pass populates the chain-prefix
            # groups (and the final group) with complete plans, giving
            # the branch-and-bound upper bounds something to bite on
            # from the first DP expansion.
            self._seed_bounds(component)
        full_bushy = self.mode is JoinSearchMode.EXHAUSTIVE2
        for size in range(2, len(members) + 1):
            for combo in itertools.combinations(members, size):
                subset = frozenset(combo)
                if not self._connected(subset):
                    continue
                self._expand_subset(subset, full_bushy)
        final = self.memo.group(frozenset(component))
        if final.best_plan is None:
            return self._greedy(component)
        return final.best_plan, final.best_cost, final.rows

    def _seed_bounds(self, component: FrozenSet[int]) -> None:
        """Cost one connectivity-respecting left-deep chain, cheapest
        local unit first.  One chain (n-1 join steps) versus the DP's
        exponential candidate count — negligible seeding cost."""
        remaining = set(component)
        first = min(remaining,
                    key=lambda index: (self._local[index][2],
                                       self._local[index][1]))
        order = [first]
        remaining.discard(first)
        while remaining:
            placed = frozenset(order)
            candidates = [index for index in remaining
                          if self._connected(placed | {index})]
            if not candidates:
                candidates = list(remaining)
            next_index = min(candidates,
                             key=lambda index: (self._local[index][2],
                                                self._local[index][1]))
            order.append(next_index)
            remaining.discard(next_index)
        self._cost_chain(order)

    def _expand_subset(self, subset: FrozenSet[int],
                       full_bushy: bool) -> None:
        self._check_budget()
        self.expansions += 1
        group = self.memo.group(subset)
        group.rows = self.subset_rows(subset)
        members = sorted(subset)
        if full_bushy:
            partitions = self._all_partitions(members)
        else:
            partitions = [(frozenset(subset - {index}), frozenset({index}))
                          for index in members]
        for side_a, side_b in partitions:
            if not self._connected(side_a) or not self._connected(side_b):
                continue
            group_a = self.memo.group(side_a)
            group_b = self.memo.group(side_b)
            if group_a.best_plan is None or group_b.best_plan is None:
                continue
            self._offer_joins_bounded(group, group_a, group_b)
            self._offer_joins_bounded(group, group_b, group_a)

    def _offer_joins_bounded(self, group, group_a, group_b) -> None:
        """Offer joins of A and B unless branch-and-bound rules them out.

        ``_pair_lower_bound`` underestimates every candidate this
        orientation could offer; once it reaches the group's best
        complete plan no candidate from this pair can win, so none is
        built or costed.
        """
        if self.enable_pruning and group.best_plan is not None and \
                self._pair_lower_bound(group, group_a, group_b) \
                >= group.best_cost:
            self.pruned_candidates += 1
            group.note_pruned()
            return
        self._offer_joins(group, group_a, group_b)

    def _pair_lower_bound(self, group, group_a, group_b) -> float:
        """An admissible lower bound for joining A (outer) with B.

        Mirrors exactly the candidate set :meth:`_offer_joins` builds
        for this orientation: a hash join costs its inputs plus the
        (deterministic, rows-only) hash formula; a singleton inner side
        additionally allows an index NL join — which omits the inner
        group's cost but pays at least one B-tree descent per outer
        row — and an NL rescan of the inner unit's known access cost.
        The floor formulas don't count as cost-model evaluations, which
        is the point: a pruned pair does no costing work at all.
        """
        rows_a = group_a.rows
        rows_b = group_b.rows
        inputs = group_a.best_cost + group_b.best_cost
        bound = inputs + self.cost_model.hash_join_floor(
            rows_b, rows_a, group.rows)
        if len(group_b.key) == 1:
            unit_cost = self._local[next(iter(group_b.key))][1]
            bound = min(
                bound,
                inputs + rows_a * unit_cost,
                group_a.best_cost
                + self.cost_model.index_nljoin_floor(rows_a))
        return bound

    def _all_partitions(self, members: List[int]):
        """All 2-way partitions of the member list (first side holds the
        lowest member to halve the enumeration; both orientations are
        offered by the caller)."""
        rest = members[1:]
        first = members[0]
        partitions = []
        for mask in range(0, 1 << len(rest)):
            side_a = {first}
            side_b = set()
            for bit, member in enumerate(rest):
                if mask & (1 << bit):
                    side_a.add(member)
                else:
                    side_b.add(member)
            if side_b:
                partitions.append((frozenset(side_a), frozenset(side_b)))
        return partitions

    def _prune_candidate(self, group, floor: float) -> bool:
        """Candidate-level branch and bound: skip one candidate whose
        cost floor already reaches the group's incumbent.  Re-read the
        incumbent per candidate — offers earlier in the same pair may
        have lowered it."""
        if not self.enable_pruning or floor < group.best_cost:
            return False
        self.pruned_candidates += 1
        group.note_pruned()
        return True

    def _offer_joins(self, group, group_a, group_b) -> None:
        """Offer join alternatives with A as the row-driving (outer) side."""
        subset = group.key
        out_rows = group.rows
        rows_a = group_a.rows
        rows_b = group_b.rows
        inputs = group_a.best_cost + group_b.best_cost
        plan_a = group_a.best_plan
        plan_b = group_b.best_plan
        cross = self._cross_conjuncts(group_a.key, group_b.key)
        entries_a = self._entries_of(group_a.key)
        entries_b = self._entries_of(group_b.key)

        # Hash join: probe with A, build with B.
        if self._has_equi(cross, entries_a, entries_b) and \
                not self._prune_candidate(
                    group, inputs + self.cost_model.hash_join_floor(
                        rows_b, rows_a, out_rows)):
            cost = (inputs
                    + self.cost_model.hash_join_cost(rows_b, rows_a,
                                                     out_rows))
            join = PhysicalHashJoin(plan_a, plan_b, JoinVariant.INNER, cross)
            join.cost, join.rows = cost, out_rows
            group.offer(join, cost)

        # Index NL join: only when the inner side is a single base unit.
        if len(group_b.key) == 1:
            index = next(iter(group_b.key))
            unit = self.units[index]
            entry = unit.descriptor.entry
            if entry.kind is EntryKind.BASE and not self._prune_candidate(
                    group, group_a.best_cost
                    + self.cost_model.index_nljoin_floor(rows_a)):
                ref = ref_access(self.block, entry,
                                 unit.conjuncts + cross,
                                 entries_a | self.corr,
                                 self.estimator, self.cost_model)
                if ref is not None:
                    cost = (group_a.best_cost
                            + self.cost_model.index_nljoin_cost(
                                rows_a, ref.est_cost))
                    inner_get = PhysicalGet(unit.descriptor, ref,
                                            list(unit.conjuncts))
                    inner_get.cost = ref.est_cost
                    inner_get.rows = ref.est_rows
                    join = PhysicalNLJoin(plan_a, inner_get,
                                          JoinVariant.INNER, cross,
                                          index_inner=True)
                    join.cost, join.rows = cost, out_rows
                    group.offer(join, cost)
            # Plain NL rescan (cartesian or non-equi) fallback.
            __, unit_cost, __, __ = self._local[index]
            if not self._prune_candidate(group,
                                         inputs + rows_a * unit_cost):
                cost = (inputs
                        + self.cost_model.nljoin_rescan_cost(rows_a,
                                                             unit_cost))
                join = PhysicalNLJoin(plan_a, plan_b, JoinVariant.INNER,
                                      cross)
                join.cost, join.rows = cost, out_rows
                group.offer(join, cost)

    # -- greedy and polish -------------------------------------------------------------------

    def _greedy(self, component: FrozenSet[int]
                ) -> Tuple[PhysicalOp, float, float]:
        order = self._greedy_order(component)
        return self._cost_chain(order)

    def _greedy_order(self, component: FrozenSet[int]) -> List[int]:
        remaining = set(component)
        # Drive from the cheapest standalone unit among well-connected ones.
        order: List[int] = []
        first = min(remaining,
                    key=lambda index: (self._local[index][2],
                                       self._local[index][1]))
        order.append(first)
        remaining.discard(first)
        while remaining:
            placed = frozenset(order)
            candidates = [index for index in remaining
                          if self._connected(placed | {index})]
            if not candidates:
                candidates = list(remaining)
            best_index = None
            best_cost = None
            for index in candidates:
                __, cost, rows = self._cost_chain(order + [index])
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_index = index
            order.append(best_index)
            remaining.discard(best_index)
        return order

    def _polish(self, component: FrozenSet[int], plan: PhysicalOp,
                cost: float, rows: float
                ) -> Tuple[PhysicalOp, float, float]:
        """EXHAUSTIVE2's extra effort on joins too wide for DP:
        repeated re-insertion of each unit at every chain position."""
        order = self._greedy_order(component)
        best_plan, best_cost, best_rows = self._cost_chain(order)
        for __ in range(POLISH_ROUNDS):
            improved = False
            for position in range(len(order)):
                unit = order[position]
                without = order[:position] + order[position + 1:]
                for insert_at in range(len(without) + 1):
                    if insert_at == position:
                        continue
                    candidate = (without[:insert_at] + [unit]
                                 + without[insert_at:])
                    trial_plan, trial_cost, trial_rows = \
                        self._cost_chain(candidate)
                    if trial_cost < best_cost:
                        best_plan, best_cost, best_rows = \
                            trial_plan, trial_cost, trial_rows
                        order = candidate
                        improved = True
                        break
                if improved:
                    break
            if not improved:
                break
        return best_plan, best_cost, best_rows

    def _cost_chain(self, order: List[int]
                    ) -> Tuple[PhysicalOp, float, float]:
        """Cost a left-deep chain, choosing the best method per step."""
        self._check_budget()
        self.chains_costed += 1
        first = order[0]
        key = frozenset({first})
        group = self.memo.group(key)
        access, cost, rows, get = self._local[first]
        group.rows = rows
        group.offer(get, cost, costed=False)
        plan: PhysicalOp = group.best_plan
        total_cost = group.best_cost
        placed = {first}
        for index in order[1:]:
            new_key = frozenset(placed | {index})
            new_group = self.memo.group(new_key)
            new_group.rows = self.subset_rows(new_key)
            pseudo_a = self.memo.group(frozenset(placed))
            pseudo_a.rows = self.subset_rows(frozenset(placed))
            if pseudo_a.best_plan is None or \
                    pseudo_a.best_cost > total_cost:
                pseudo_a.best_plan = plan
                pseudo_a.best_cost = total_cost
            group_b = self.memo.group(frozenset({index}))
            if group_b.best_plan is None:
                access_b, cost_b, rows_b, get_b = self._local[index]
                group_b.rows = rows_b
                group_b.offer(get_b, cost_b, costed=False)
            self._offer_joins(new_group, pseudo_a, group_b)
            self._offer_joins(new_group, group_b, pseudo_a)
            if new_group.best_plan is None:
                raise OrcaError("could not join unit into chain")
            plan = new_group.best_plan
            total_cost = new_group.best_cost
            placed.add(index)
        final = frozenset(placed)
        return plan, total_cost, self.subset_rows(final)
