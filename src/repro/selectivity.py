"""Selectivity estimation shared by both optimizers.

The MySQL-style optimizer calls this with ``use_histograms=False`` (rough
heuristics plus NDV, matching MySQL's classic estimation), while the
Orca-style optimizer passes ``use_histograms=True`` so singleton and
equi-height histograms (including the string histograms of Section 5.5)
drive the estimates.

All functions return fractions in [0, 1]; callers multiply by input
cardinalities.
"""

from __future__ import annotations

from typing import Optional

from repro.catalog.catalog import Catalog
from repro.catalog.statistics import ColumnStatistics
from repro.sql import ast
from repro.sql.blocks import EntryKind, QueryBlock, referenced_entries

#: Default selectivities used when no statistics apply (MySQL-style).
DEFAULT_EQ = 0.1
DEFAULT_RANGE = 1.0 / 3.0
DEFAULT_BETWEEN = 0.25
DEFAULT_LIKE = 0.1
DEFAULT_OTHER = 1.0 / 3.0


class SelectivityEstimator:
    """Estimates conjunct selectivities against base-table statistics."""

    def __init__(self, catalog: Catalog, use_histograms: bool) -> None:
        self.catalog = catalog
        self.use_histograms = use_histograms

    # -- column statistics lookup --------------------------------------------------

    def column_stats(self, block: QueryBlock,
                     ref: ast.ColumnRef) -> Optional[ColumnStatistics]:
        """Statistics for a resolved column ref in the given block tree."""
        if ref.entry_id is None:
            return None
        entry = block.context.entry(ref.entry_id)
        if entry.kind is not EntryKind.BASE or entry.table_schema is None:
            return None
        stats = self.catalog.statistics(entry.table_schema.name)
        if stats.row_count == 0:
            return None
        return stats.column(entry.columns[ref.position].name)

    def table_rows(self, block: QueryBlock, entry_id: int) -> float:
        entry = block.context.entry(entry_id)
        if entry.kind is EntryKind.BASE and entry.table_schema is not None:
            return float(max(
                1, self.catalog.statistics(entry.table_schema.name).row_count))
        return 1000.0

    def column_ndv(self, block: QueryBlock, ref: ast.ColumnRef) -> float:
        stats = self.column_stats(block, ref)
        if stats is None:
            return 100.0
        return float(max(1, stats.distinct_count))

    # -- conjunct selectivity ----------------------------------------------------------

    def conjunct_selectivity(self, block: QueryBlock,
                             conjunct: ast.Expr) -> float:
        """Selectivity of one conjunct applied to its referenced rows."""
        sel = self._selectivity(block, conjunct)
        return min(1.0, max(1e-6, sel))

    def _selectivity(self, block: QueryBlock, expr: ast.Expr) -> float:
        if isinstance(expr, ast.BinaryExpr):
            if expr.op is ast.BinOp.AND:
                return (self._selectivity(block, expr.left)
                        * self._selectivity(block, expr.right))
            if expr.op is ast.BinOp.OR:
                left = self._selectivity(block, expr.left)
                right = self._selectivity(block, expr.right)
                return left + right - left * right
            if expr.op in ast.COMPARISON_OPS:
                return self._comparison_selectivity(block, expr)
        if isinstance(expr, ast.NotExpr):
            return 1.0 - self._selectivity(block, expr.operand)
        if isinstance(expr, ast.IsNullExpr):
            return self._isnull_selectivity(block, expr)
        if isinstance(expr, ast.BetweenExpr):
            return self._between_selectivity(block, expr)
        if isinstance(expr, ast.LikeExpr):
            return self._like_selectivity(block, expr)
        if isinstance(expr, ast.InListExpr):
            return self._inlist_selectivity(block, expr)
        if isinstance(expr, (ast.InSubqueryExpr, ast.ExistsExpr)):
            return 0.5
        if isinstance(expr, ast.Literal):
            if expr.value is True:
                return 1.0
            if expr.value in (False, None):
                return 0.0
        return DEFAULT_OTHER

    def _comparison_selectivity(self, block: QueryBlock,
                                expr: ast.BinaryExpr) -> float:
        column, literal, op = self._normalise_comparison(expr)
        if column is None:
            return self._column_column_selectivity(block, expr)
        stats = self.column_stats(block, column)
        if op is ast.BinOp.EQ:
            if stats is not None:
                if self.use_histograms and stats.histogram is not None \
                        and literal is not None:
                    return stats.histogram.selectivity_eq(literal)
                return 1.0 / max(1, stats.distinct_count)
            return DEFAULT_EQ
        if op is ast.BinOp.NE:
            if stats is not None:
                return 1.0 - 1.0 / max(1, stats.distinct_count)
            return 1.0 - DEFAULT_EQ
        # Range comparison.
        if stats is not None and self.use_histograms \
                and stats.histogram is not None and literal is not None:
            try:
                if op is ast.BinOp.LT:
                    return stats.histogram.selectivity_lt(literal)
                if op is ast.BinOp.LE:
                    return stats.histogram.selectivity_lt(literal, True)
                if op is ast.BinOp.GT:
                    return stats.histogram.selectivity_gt(literal)
                if op is ast.BinOp.GE:
                    return stats.histogram.selectivity_gt(literal, True)
            except (TypeError, ValueError):
                return DEFAULT_RANGE
        return DEFAULT_RANGE

    def _normalise_comparison(self, expr: ast.BinaryExpr):
        """Return (column_ref, literal_value, op) with the column on the left.

        Returns (None, None, op) when the comparison is not col-vs-constant.
        """
        left, right, op = expr.left, expr.right, expr.op
        if isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal):
            return left, right.value, op
        if isinstance(right, ast.ColumnRef) and isinstance(left, ast.Literal):
            return right, left.value, ast.COMMUTED_COMPARISON[op]
        if isinstance(left, ast.ColumnRef) and _is_constant(right):
            return left, None, op
        if isinstance(right, ast.ColumnRef) and _is_constant(left):
            return right, None, ast.COMMUTED_COMPARISON[op]
        return None, None, op

    def _column_column_selectivity(self, block: QueryBlock,
                                   expr: ast.BinaryExpr) -> float:
        left, right = expr.left, expr.right
        if isinstance(left, ast.ColumnRef) and \
                isinstance(right, ast.ColumnRef):
            if expr.op is ast.BinOp.EQ:
                ndv = max(self.column_ndv(block, left),
                          self.column_ndv(block, right))
                return 1.0 / ndv
            return DEFAULT_RANGE
        return DEFAULT_OTHER

    def _isnull_selectivity(self, block: QueryBlock,
                            expr: ast.IsNullExpr) -> float:
        if isinstance(expr.operand, ast.ColumnRef):
            stats = self.column_stats(block, expr.operand)
            entry = block.context.entry(expr.operand.entry_id) \
                if expr.operand.entry_id is not None else None
            if stats is not None and entry is not None \
                    and entry.table_schema is not None:
                rows = self.catalog.statistics(
                    entry.table_schema.name).row_count
                null_fraction = stats.null_fraction(rows)
                return (1.0 - null_fraction) if expr.negated \
                    else null_fraction
        return 0.05 if not expr.negated else 0.95

    def _between_selectivity(self, block: QueryBlock,
                             expr: ast.BetweenExpr) -> float:
        if self.use_histograms and isinstance(expr.operand, ast.ColumnRef) \
                and isinstance(expr.low, ast.Literal) \
                and isinstance(expr.high, ast.Literal):
            stats = self.column_stats(block, expr.operand)
            if stats is not None and stats.histogram is not None:
                try:
                    sel = stats.histogram.selectivity_range(
                        expr.low.value, expr.high.value,
                        low_inclusive=True, high_inclusive=True)
                except (TypeError, ValueError):
                    sel = DEFAULT_BETWEEN
                return (1.0 - sel) if expr.negated else sel
        return (1.0 - DEFAULT_BETWEEN) if expr.negated else DEFAULT_BETWEEN

    def _like_selectivity(self, block: QueryBlock,
                          expr: ast.LikeExpr) -> float:
        # Histograms cannot estimate general patterns (the paper remarks on
        # this for Q16); a fixed default keeps both optimizers honest.
        return (1.0 - DEFAULT_LIKE) if expr.negated else DEFAULT_LIKE

    def _inlist_selectivity(self, block: QueryBlock,
                            expr: ast.InListExpr) -> float:
        if isinstance(expr.operand, ast.ColumnRef):
            stats = self.column_stats(block, expr.operand)
            if stats is not None:
                if self.use_histograms and stats.histogram is not None:
                    sel = 0.0
                    for item in expr.items:
                        if isinstance(item, ast.Literal):
                            sel += stats.histogram.selectivity_eq(item.value)
                    sel = min(1.0, sel)
                else:
                    sel = min(1.0, len(expr.items)
                              / max(1, stats.distinct_count))
                return (1.0 - sel) if expr.negated else sel
        sel = min(1.0, DEFAULT_EQ * len(expr.items))
        return (1.0 - sel) if expr.negated else sel

    # -- join selectivity -----------------------------------------------------------

    def join_selectivity(self, block: QueryBlock,
                         conjunct: ast.Expr) -> float:
        """Selectivity of a join conjunct between two table sets."""
        if isinstance(conjunct, ast.BinaryExpr) and \
                conjunct.op is ast.BinOp.EQ:
            left, right = conjunct.left, conjunct.right
            if isinstance(left, ast.ColumnRef) and \
                    isinstance(right, ast.ColumnRef):
                ndv = max(self.column_ndv(block, left),
                          self.column_ndv(block, right))
                return 1.0 / ndv
        return self.conjunct_selectivity(block, conjunct)


def _is_constant(expr: ast.Expr) -> bool:
    return all(not isinstance(node, ast.ColumnRef) for node in expr.walk())


def local_selectivity(estimator: SelectivityEstimator, block: QueryBlock,
                      entry_id: int, conjuncts) -> float:
    """Combined selectivity of the conjuncts local to one entry."""
    selectivity = 1.0
    for conjunct in conjuncts:
        if referenced_entries(conjunct) == frozenset({entry_id}):
            selectivity *= estimator.conjunct_selectivity(block, conjunct)
    return selectivity
