"""Workload intelligence: statement history, column usage, an advisor.

The paper's integration ships against live customer workloads, where
tuning decisions come from *workload-level* evidence — which statement
shapes dominate, which columns they filter and join on, which tables'
statistics have drifted — not from any single statement trace.  "Query
Optimization in the Wild" names this feedback layer as the dominant
industrial trend on top of classical optimizers.  This module is that
layer for the repro engine, built on the observability stack the
earlier PRs seeded (spans, :class:`repro.observability.MetricsRegistry`,
the misestimation ledger):

* :func:`compute_plan_hash` — a literal-free digest of a statement's
  executable plan *shape* (operators, join order, access paths,
  aggregation strategy).  Statements sharing a resilience fingerprint
  but differing only in literals share a hash; a genuine shape change
  (scan → index lookup, join reorder, hash → nested loop) changes it.
* :func:`extract_column_touches` — per-statement ``(table, column,
  kind)`` usage facts pulled from the executable plan, with kinds
  ``predicate`` / ``join`` / ``group`` / ``sort``.  Both optimizers
  refine into the same plan-node vocabulary, so the extraction is
  routing-agnostic.
* :class:`WorkloadRepository` — a bounded LRU keyed by the
  literal-normalised statement fingerprint, aggregating executions,
  latency quantiles (seeded reservoir histograms, so reports are
  reproducible), rows, optimizer/executor-mode mix, plan-cache hits,
  Q-error breaches, fallbacks and aborts, and a per-fingerprint plan
  hash.  A plan-hash change followed by a sustained p95 latency
  increase is flagged as a **plan regression**.
* :class:`Advisor` — turns the repository plus the existing staleness
  and cost-model machinery into ranked, machine-readable
  :class:`Recommendation` objects: re-ANALYZE scheduling, index
  candidates (benefit-estimated with a what-if probe of the MySQL cost
  model), and plan-cache hygiene for confirmed regressions.  The
  ranking is deterministic: the same history always produces
  byte-identical recommendations.

The Database facade owns one repository and one advisor, records every
completed statement (see ``workload_tracking_enabled``), surfaces the
whole thing through ``db.workload_report()``, and — when
``advisor_auto_analyze`` is on — applies pending re-ANALYZE
recommendations every ``advisor_interval_statements`` statements.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mysql_optimizer.cost import MySQLCostModel
from repro.observability import StreamingHistogram
from repro.plan_quality import stats_staleness
from repro.sql import ast
from repro.sql.blocks import EntryKind

__all__ = [
    "Advisor",
    "PlanRegression",
    "Recommendation",
    "StatementStats",
    "WorkloadRepository",
    "compute_plan_hash",
    "extract_column_touches",
    "format_workload_report",
]

#: How many closed plan phases one statement keeps for regression
#: context; older phases age out silently.
MAX_PHASES = 4


# ---------------------------------------------------------------------------
# Plan shape hashing
# ---------------------------------------------------------------------------

def compute_plan_hash(executor) -> str:
    """A 12-hex digest of the executable plan's *shape*.

    Tokens are emitted in the deterministic pre-order
    :meth:`repro.executor.executor.Executor.iter_plan_nodes` traversal
    and deliberately exclude anything literal- or estimate-derived:
    node class, table alias, index name, aggregation strategy, and
    child count.  Two literal variants of one statement shape therefore
    hash identically, while a join reorder, an access-path switch, or a
    hash-to-nested-loop change produces a new hash — exactly the
    changes the plan-regression detector should react to.
    """
    tokens: List[str] = []
    for node in executor.iter_plan_nodes():
        alias = getattr(node, "alias", "") or ""
        index_name = getattr(node, "index_name", "") or ""
        strategy = getattr(node, "strategy", "")
        strategy = getattr(strategy, "value", strategy) or ""
        tokens.append(f"{type(node).__name__}/{alias}/{index_name}/"
                      f"{strategy}/{len(node.children())}")
    digest = hashlib.sha1("|".join(tokens).encode("utf-8"))
    return digest.hexdigest()[:12]


# ---------------------------------------------------------------------------
# Column-touch extraction
# ---------------------------------------------------------------------------

def _resolve_ref(context, ref: ast.ColumnRef
                 ) -> Optional[Tuple[str, str]]:
    """``(table, column)`` for a resolved base-table column ref.

    Only :data:`~repro.sql.blocks.EntryKind.BASE` entries count —
    derived tables, CTEs, and plan pseudo entries have no catalog
    identity for the advisor to act on.
    """
    if ref.entry_id is None:
        return None
    try:
        entry = context.entry(ref.entry_id)
    except Exception:
        return None
    if entry.kind is not EntryKind.BASE or entry.table_schema is None:
        return None
    position = ref.position
    if position is not None and 0 <= position < len(entry.columns):
        column = entry.columns[position].name
    else:
        column = ref.column
    return entry.table_schema.name, column


def extract_column_touches(executor) -> Tuple[Tuple[str, str, str], ...]:
    """Deduplicated, sorted ``(table, column, kind)`` touches of a plan.

    Walks every plan node's :meth:`touch_exprs` hook and resolves each
    :class:`~repro.sql.ast.ColumnRef` through the statement context.  A
    ``join``-kind conjunct is downgraded to ``predicate`` when its
    columns all come from one table entry *and* the expression carries a
    literal — that is a pushed single-table filter riding in a join's
    conjunct list, not a join key (bare key expressions, which reference
    one side by construction, carry no literal and stay ``join``).  An
    index lookup additionally touches the probed index's own key
    columns on the inner table.

    The result is computed once per compiled plan (the Database caches
    it on the executor, which the plan cache shares across executions),
    so the per-execution cost of usage tracking is a set union.
    """
    touches = set()
    context = executor.context
    for node in executor.iter_plan_nodes():
        for kind, expr in node.touch_exprs():
            refs = [sub for sub in expr.walk()
                    if isinstance(sub, ast.ColumnRef)]
            resolved = [_resolve_ref(context, ref) for ref in refs]
            resolved = [pair for pair in resolved if pair is not None]
            if not resolved:
                continue
            if kind == "join":
                tables = {table for table, __ in resolved}
                has_literal = any(isinstance(sub, ast.Literal)
                                  for sub in expr.walk())
                if len(tables) < 2 and has_literal:
                    kind = "predicate"
            for table, column in resolved:
                touches.add((table, column, kind))
        index_name = getattr(node, "index_name", None)
        entry_id = getattr(node, "entry_id", None)
        if index_name is None or entry_id is None:
            continue
        try:
            entry = context.entry(entry_id)
        except Exception:
            continue
        if entry.kind is not EntryKind.BASE or entry.table_schema is None:
            continue
        for index in entry.table_schema.indexes:
            if index.name != index_name:
                continue
            node_kind = type(node).__name__
            key_kind = "join" if node_kind == "IndexLookupNode" \
                else "predicate"
            for column in index.column_names:
                touches.add((entry.table_schema.name, column, key_kind))
    return tuple(sorted(touches))


# ---------------------------------------------------------------------------
# The workload repository
# ---------------------------------------------------------------------------

@dataclass
class PlanPhase:
    """One contiguous run of executions under a single plan shape."""

    plan_hash: str
    executions: int = 0
    latency: StreamingHistogram = field(
        default_factory=StreamingHistogram)
    #: Set once the regression check for this phase has run (pass or
    #: fail), so one hash change yields at most one regression flag.
    checked: bool = False

    def to_dict(self) -> dict:
        return {
            "plan_hash": self.plan_hash,
            "executions": self.executions,
            "p50_seconds": self.latency.quantile(0.50),
            "p95_seconds": self.latency.quantile(0.95),
        }


@dataclass
class PlanRegression:
    """A confirmed *plan change + p95 latency regression* for one shape."""

    fingerprint: str
    from_hash: str
    to_hash: str
    before_p95: float
    after_p95: float
    factor: float
    resolved: bool = False

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "from_hash": self.from_hash,
            "to_hash": self.to_hash,
            "before_p95_seconds": self.before_p95,
            "after_p95_seconds": self.after_p95,
            "factor": self.factor,
            "resolved": self.resolved,
        }


class StatementStats:
    """Aggregate history of one statement fingerprint."""

    def __init__(self, fingerprint: str, sql: str) -> None:
        self.fingerprint = fingerprint
        #: One representative SQL text (the first literal variant seen).
        self.sample_sql = sql
        self.executions = 0
        self.total_rows = 0
        self.aborts = 0
        self.fallbacks = 0
        self.breaches = 0
        self.plan_cache_hits = 0
        self.latency = StreamingHistogram()
        self.optimizers: Dict[str, int] = {}
        self.modes: Dict[str, int] = {}
        self.touches: Tuple[Tuple[str, str, str], ...] = ()
        #: The live phase (current plan shape) plus bounded history.
        self.phase: Optional[PlanPhase] = None
        self.past_phases: List[PlanPhase] = []
        self.plan_changes = 0
        self.regressions: List[PlanRegression] = []

    @property
    def plan_hash(self) -> Optional[str]:
        return self.phase.plan_hash if self.phase is not None else None

    @property
    def hit_ratio(self) -> float:
        if not self.executions:
            return 0.0
        return self.plan_cache_hits / self.executions

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "sql": self.sample_sql,
            "executions": self.executions,
            "rows": self.total_rows,
            "aborts": self.aborts,
            "fallbacks": self.fallbacks,
            "breaches": self.breaches,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_hit_ratio": self.hit_ratio,
            "latency": self.latency.summary(),
            "optimizers": dict(sorted(self.optimizers.items())),
            "executor_modes": dict(sorted(self.modes.items())),
            "plan_hash": self.plan_hash,
            "plan_changes": self.plan_changes,
            "phases": [phase.to_dict() for phase in
                       (self.past_phases + ([self.phase]
                                            if self.phase else []))],
            "regressions": [r.to_dict() for r in self.regressions],
            "columns": [list(touch) for touch in self.touches],
        }


class WorkloadRepository:
    """Bounded LRU of per-fingerprint statement history + column usage.

    Keyed by the literal-normalised resilience fingerprint (unlike the
    plan cache's literal-preserving key): the repository answers
    workload-shape questions, so ``WHERE o_totalprice > 100`` and
    ``> 250`` are one statement.  Column-usage and per-table breach
    aggregates are workload-level and monotonic — they survive entry
    eviction, so a heavily-touched column keeps its evidence even under
    fingerprint churn.

    Plan-regression rule: when an execution arrives under a new plan
    hash the current phase closes and a new one opens; once both the
    closed phase and the new phase hold at least ``regression_min_samples``
    latency samples, the new phase's p95 is checked once against the old
    — exceeding ``regression_factor`` × the old p95 flags a
    :class:`PlanRegression` (which the advisor turns into a plan-cache
    invalidation).
    """

    def __init__(self, capacity: int = 512,
                 regression_factor: float = 1.5,
                 regression_min_samples: int = 3,
                 metrics=None) -> None:
        if capacity < 1:
            raise ValueError("workload repository capacity must be >= 1")
        if regression_factor <= 1.0:
            raise ValueError("regression_factor must be > 1.0")
        if regression_min_samples < 1:
            raise ValueError("regression_min_samples must be >= 1")
        self.capacity = capacity
        self.regression_factor = regression_factor
        self.regression_min_samples = regression_min_samples
        self.metrics = metrics
        self._entries: "OrderedDict[str, StatementStats]" = OrderedDict()
        #: (table, column, kind) -> executions that touched it.
        self._column_usage: Dict[Tuple[str, str, str], int] = {}
        #: table -> [executions touching it, breaching executions].
        self._table_activity: Dict[str, List[int]] = {}
        self.recorded = 0
        self.evictions = 0
        self.total_breaches = 0
        self.total_regressions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, fingerprint: str) -> Optional[StatementStats]:
        return self._entries.get(fingerprint)

    def entries(self) -> List[StatementStats]:
        """Current entries, most-executed first (fingerprint tiebreak)."""
        return sorted(self._entries.values(),
                      key=lambda e: (-e.executions, e.fingerprint))

    def _get_or_create(self, fingerprint: str, sql: str) -> StatementStats:
        entry = self._entries.get(fingerprint)
        if entry is None:
            entry = StatementStats(fingerprint, sql)
            self._entries[fingerprint] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                if self.metrics is not None:
                    self.metrics.inc("workload.evictions")
        else:
            self._entries.move_to_end(fingerprint)
        return entry

    def record(self, fingerprint: str, sql: str, plan_hash: str,
               touches: Tuple[Tuple[str, str, str], ...],
               latency_seconds: float, rows: int, optimizer_used: str,
               executor_mode: str, plan_cache_hit: bool,
               breached: bool, fallback: bool
               ) -> Tuple[StatementStats, Optional[PlanRegression]]:
        """Fold one completed execution in.

        Returns ``(entry, regression)`` where ``regression`` is the
        freshly-confirmed :class:`PlanRegression` (at most one per plan
        change) or None.
        """
        entry = self._get_or_create(fingerprint, sql)
        entry.executions += 1
        entry.total_rows += rows
        entry.latency.observe(latency_seconds)
        entry.optimizers[optimizer_used] = \
            entry.optimizers.get(optimizer_used, 0) + 1
        entry.modes[executor_mode] = entry.modes.get(executor_mode, 0) + 1
        if plan_cache_hit:
            entry.plan_cache_hits += 1
        if breached:
            entry.breaches += 1
            self.total_breaches += 1
        if fallback:
            entry.fallbacks += 1
        entry.touches = touches
        self.recorded += 1
        if self.metrics is not None:
            self.metrics.inc("workload.recorded")
        # Column usage and per-table breach attribution (workload-level,
        # survives entry eviction).
        tables = set()
        for table, column, kind in touches:
            key = (table, column, kind)
            self._column_usage[key] = self._column_usage.get(key, 0) + 1
            tables.add(table)
        for table in sorted(tables):
            activity = self._table_activity.setdefault(table, [0, 0])
            activity[0] += 1
            if breached:
                activity[1] += 1
        regression = self._fold_phase(entry, plan_hash, latency_seconds)
        return entry, regression

    def _fold_phase(self, entry: StatementStats, plan_hash: str,
                    latency_seconds: float) -> Optional[PlanRegression]:
        if entry.phase is None:
            entry.phase = PlanPhase(plan_hash)
        elif entry.phase.plan_hash != plan_hash:
            entry.past_phases.append(entry.phase)
            del entry.past_phases[:-MAX_PHASES]
            entry.phase = PlanPhase(plan_hash)
            entry.plan_changes += 1
            if self.metrics is not None:
                self.metrics.inc("workload.plan_changes")
        phase = entry.phase
        phase.executions += 1
        phase.latency.observe(latency_seconds)
        if phase.checked or not entry.past_phases:
            return None
        previous = entry.past_phases[-1]
        if previous.executions < self.regression_min_samples \
                or phase.executions < self.regression_min_samples:
            return None
        phase.checked = True
        before = previous.latency.quantile(0.95)
        after = phase.latency.quantile(0.95)
        if before <= 0.0 or after <= self.regression_factor * before:
            return None
        regression = PlanRegression(
            fingerprint=entry.fingerprint,
            from_hash=previous.plan_hash,
            to_hash=phase.plan_hash,
            before_p95=before,
            after_p95=after,
            factor=after / before,
        )
        entry.regressions.append(regression)
        self.total_regressions += 1
        if self.metrics is not None:
            self.metrics.inc("workload.plan_regressions")
        return regression

    def record_abort(self, fingerprint: str, sql: str) -> None:
        """Count an aborted execution (no latency, rows, or phase data —
        an abort produces none worth trusting)."""
        entry = self._get_or_create(fingerprint, sql)
        entry.aborts += 1

    def note_external_regression(self, fingerprint: str, sql: str,
                                 before_p95: float, after_p95: float,
                                 plan_hash: Optional[str] = None
                                 ) -> Optional[PlanRegression]:
        """Record a regression confirmed by an *external* detector.

        The flight recorder's watchdog compares trailing execution
        windows rather than plan phases, so it catches same-plan
        slowdowns (data growth, stats drift) the phase-based rule never
        sees.  Its finding enters here as a :class:`PlanRegression`
        with ``from_hash == to_hash`` — the advisor then surfaces and
        remediates it through the exact same ``plan_regression`` path.
        Deduped: while an unresolved regression with the same target
        hash exists for the fingerprint, repeated findings are dropped
        (returns None).
        """
        entry = self._get_or_create(fingerprint, sql)
        hash_text = plan_hash or (entry.plan_hash or "")
        for existing in entry.regressions:
            if not existing.resolved and existing.to_hash == hash_text:
                return None
        regression = PlanRegression(
            fingerprint=fingerprint,
            from_hash=hash_text,
            to_hash=hash_text,
            before_p95=before_p95,
            after_p95=after_p95,
            factor=after_p95 / before_p95 if before_p95 > 0.0 else 0.0,
        )
        entry.regressions.append(regression)
        self.total_regressions += 1
        if self.metrics is not None:
            self.metrics.inc("workload.plan_regressions")
        return regression

    # -- aggregates --------------------------------------------------------------

    def column_usage(self) -> List[dict]:
        """Per-column usage, heaviest first (then table/column/kind)."""
        ranked = sorted(self._column_usage.items(),
                        key=lambda item: (-item[1], item[0]))
        return [{"table": table, "column": column, "kind": kind,
                 "executions": count}
                for (table, column, kind), count in ranked]

    def usage_for(self, table: str, column: str) -> Dict[str, int]:
        """kind -> execution count for one column (empty when unseen)."""
        out: Dict[str, int] = {}
        for (tab, col, kind), count in self._column_usage.items():
            if tab == table and col == column:
                out[kind] = count
        return out

    def table_breach_rate(self, table: str) -> float:
        """Fraction of executions touching ``table`` that breached."""
        activity = self._table_activity.get(table)
        if not activity or not activity[0]:
            return 0.0
        return activity[1] / activity[0]

    def unresolved_regressions(self) -> List[PlanRegression]:
        """Confirmed, not-yet-acted-on regressions (deterministic order)."""
        out = [r for entry in self._entries.values()
               for r in entry.regressions if not r.resolved]
        out.sort(key=lambda r: (-r.factor, r.fingerprint))
        return out

    def resolve_regressions(self, fingerprint: str) -> int:
        """Mark every regression of one fingerprint handled."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            return 0
        pending = [r for r in entry.regressions if not r.resolved]
        for regression in pending:
            regression.resolved = True
        return len(pending)

    def stats(self) -> dict:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "recorded": self.recorded,
            "evictions": self.evictions,
            "breaches": self.total_breaches,
            "plan_regressions": self.total_regressions,
            "tracked_columns": len(self._column_usage),
        }

    def snapshot(self, limit: int = 20) -> dict:
        """JSON-ready repository dump: top statements + column usage."""
        return {
            "stats": self.stats(),
            "statements": [entry.to_dict()
                           for entry in self.entries()[:limit]],
            "column_usage": self.column_usage()[:limit],
        }


# ---------------------------------------------------------------------------
# The advisor
# ---------------------------------------------------------------------------

@dataclass
class Recommendation:
    """One ranked, machine-readable piece of advice.

    ``kind`` is one of ``reanalyze`` (run ANALYZE on ``target`` table),
    ``index`` (create an index on ``target`` = ``table.column``), or
    ``plan_regression`` (invalidate the cached plans of ``target``
    fingerprint).  Higher ``score`` ranks earlier; the score scales are
    kind-local (staleness-weighted breach pressure, estimated cost
    saving, p95 regression factor) — the ordering within a kind is the
    actionable part.
    """

    kind: str
    target: str
    score: float
    reason: str
    details: dict

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "target": self.target,
            "score": self.score,
            "reason": self.reason,
            "details": dict(self.details),
        }


class Advisor:
    """Turns workload history into ranked recommendations.

    Reads are pure: :meth:`recommendations` never mutates anything, and
    the same repository/catalog/storage state always yields the same
    (byte-identical) list.  :meth:`apply` is the opt-in mutation path —
    it runs ANALYZE for ``reanalyze`` advice and purges cached plans
    for ``plan_regression`` advice; ``index`` advice stays advisory
    (the engine has no online index build).
    """

    def __init__(self, repository: WorkloadRepository, catalog, storage,
                 plan_cache, config, metrics=None) -> None:
        self.repository = repository
        self.catalog = catalog
        self.storage = storage
        self.plan_cache = plan_cache
        #: The DatabaseConfig (read live, so knob changes apply).
        self.config = config
        self.metrics = metrics
        self.cost_model = MySQLCostModel()
        self.applied_total = 0

    # -- recommendation producers ----------------------------------------------

    def _reanalyze(self) -> List[Recommendation]:
        threshold = self.config.planq_stats_staleness_threshold
        out: List[Recommendation] = []
        for table in stats_staleness(self.catalog, self.storage,
                                     threshold=threshold):
            if not table.recommend_analyze:
                continue
            breach_rate = self.repository.table_breach_rate(table.table)
            score = table.staleness * (1.0 + breach_rate)
            out.append(Recommendation(
                kind="reanalyze",
                target=table.table,
                score=score,
                reason=(f"statistics drift {100.0 * table.staleness:.0f}% "
                        f"({table.stats_rows} analyzed vs "
                        f"{table.live_rows} live rows), "
                        f"{100.0 * breach_rate:.0f}% of touching "
                        f"executions breached"),
                details={
                    "staleness": table.staleness,
                    "stats_rows": table.stats_rows,
                    "live_rows": table.live_rows,
                    "analyzed": table.analyzed,
                    "breach_rate": breach_rate,
                },
            ))
        return out

    def _what_if_index(self, table: str, column: str,
                       usage: int) -> Optional[dict]:
        """Estimated saving of an index on ``(table, column)``.

        The probe reuses the existing MySQL cost model: today every
        execution filtering on the column pays a full table scan; with
        the index it would pay one B-tree lookup returning ``rows /
        NDV`` matches.  Live heap cardinality (not possibly-stale
        statistics) sizes the scan, so fast-growing tables rank
        realistically.
        """
        rows = float(self.storage.heap(table).row_count)
        if rows <= 0:
            return None
        ndv = self.catalog.statistics(table).ndv(column)
        matched = rows / max(1.0, ndv)
        scan_cost = self.cost_model.table_scan_cost(rows)
        lookup_cost = self.cost_model.index_lookup_cost(matched)
        saving = scan_cost - lookup_cost
        if saving <= 0.0:
            return None
        return {
            "rows": int(rows),
            "ndv": ndv,
            "matched_rows": matched,
            "table_scan_cost": scan_cost,
            "index_lookup_cost": lookup_cost,
            "saving_per_statement": saving,
            "executions": usage,
        }

    def _indexes(self) -> List[Recommendation]:
        min_usage = self.config.workload_index_min_usage
        # Aggregate predicate+join pressure per (table, column).
        pressure: Dict[Tuple[str, str], int] = {}
        for item in self.repository.column_usage():
            if item["kind"] not in ("predicate", "join"):
                continue
            key = (item["table"], item["column"])
            pressure[key] = pressure.get(key, 0) + item["executions"]
        out: List[Recommendation] = []
        for (table, column), usage in sorted(pressure.items()):
            if usage < min_usage:
                continue
            try:
                schema = self.catalog.table(table)
            except Exception:
                continue  # dropped since the touches were recorded
            if not schema.has_column(column):
                continue
            if schema.indexes_on_prefix(column):
                continue  # already indexed with this leading column
            probe = self._what_if_index(table, column, usage)
            if probe is None:
                continue
            kinds = self.repository.usage_for(table, column)
            out.append(Recommendation(
                kind="index",
                target=f"{table}.{column}",
                score=probe["saving_per_statement"] * usage,
                reason=(f"{usage} executions filter or join on an "
                        f"unindexed column; estimated cost "
                        f"{probe['table_scan_cost']:.0f} -> "
                        f"{probe['index_lookup_cost']:.0f} per access"),
                details={**probe, "usage_by_kind": kinds},
            ))
        return out

    def _plan_regressions(self) -> List[Recommendation]:
        out: List[Recommendation] = []
        for regression in self.repository.unresolved_regressions():
            out.append(Recommendation(
                kind="plan_regression",
                target=regression.fingerprint,
                score=regression.factor,
                reason=(f"plan changed "
                        f"{regression.from_hash} -> {regression.to_hash} "
                        f"and p95 latency rose "
                        f"{regression.factor:.1f}x "
                        f"({regression.before_p95:.6f}s -> "
                        f"{regression.after_p95:.6f}s)"),
                details=regression.to_dict(),
            ))
        return out

    def recommendations(self) -> List[Recommendation]:
        """All current advice, best-first (score desc, kind, target)."""
        out = self._reanalyze() + self._indexes() + \
            self._plan_regressions()
        out.sort(key=lambda r: (-r.score, r.kind, r.target))
        if self.metrics is not None:
            self.metrics.set_gauge("advisor.recommendations", len(out))
        return out

    # -- the apply hook ----------------------------------------------------------

    def apply(self, recommendations: Optional[List[Recommendation]] = None,
              kinds: Tuple[str, ...] = ("reanalyze", "plan_regression"),
              ) -> List[dict]:
        """Apply actionable advice; returns one action record each.

        ``reanalyze`` runs ANALYZE (with histograms) on the table —
        which also bumps the catalog version, so every cached plan
        recompiles against the fresh statistics.  ``plan_regression``
        purges the fingerprint's cached plans and marks the regression
        handled.  ``index`` advice is never auto-applied.
        """
        if recommendations is None:
            recommendations = self.recommendations()
        actions: List[dict] = []
        for rec in recommendations:
            if rec.kind not in kinds:
                continue
            if rec.kind == "reanalyze":
                self.storage.analyze_table(rec.target)
                action = "analyzed"
            elif rec.kind == "plan_regression":
                dropped = self.plan_cache.invalidate_fingerprint(
                    rec.target)
                self.repository.resolve_regressions(rec.target)
                action = f"invalidated {dropped} cached plans"
            else:
                continue
            self.applied_total += 1
            if self.metrics is not None:
                self.metrics.inc(f"advisor.applied.{rec.kind}")
            actions.append({"kind": rec.kind, "target": rec.target,
                            "action": action, "score": rec.score})
        return actions


# ---------------------------------------------------------------------------
# Report formatting
# ---------------------------------------------------------------------------

def format_workload_report(payload: dict) -> str:
    """Render a :meth:`repro.database.Database.workload_report` payload
    as plain text (same style as the other reports)."""
    stats = payload["repository"]["stats"]
    lines = ["Workload intelligence", "=" * 21,
             f"fingerprints tracked: {stats['size']}/{stats['capacity']} "
             f"({stats['recorded']} executions recorded, "
             f"{stats['evictions']} evicted)",
             f"breaches: {stats['breaches']}   "
             f"plan regressions: {stats['plan_regressions']}   "
             f"columns tracked: {stats['tracked_columns']}"]
    statements = payload["repository"]["statements"]
    lines.append("top statements (by executions):"
                 if statements else "top statements: (none recorded)")
    for entry in statements[:10]:
        sql = " ".join(entry["sql"].split())
        if len(sql) > 46:
            sql = sql[:43] + "..."
        latency = entry["latency"]
        flags = ""
        if entry["regressions"]:
            flags += "  REGRESSED"
        lines.append(
            f"  x{entry['executions']:<5} "
            f"p95 {latency['p95']:.6f}s  "
            f"hit {100.0 * entry['plan_cache_hit_ratio']:>3.0f}%  "
            f"plan {entry['plan_hash'] or '-':<12} {sql}{flags}")
    usage = payload["repository"]["column_usage"]
    if usage:
        lines.append("hottest columns (table.column kind x executions):")
        for item in usage[:10]:
            name = f"{item['table']}.{item['column']}"
            lines.append(f"  {name:<28} "
                         f"{item['kind']:<10} x{item['executions']}")
    recommendations = payload["recommendations"]
    lines.append(f"recommendations ({len(recommendations)}):"
                 if recommendations else "recommendations: (none)")
    for rec in recommendations:
        lines.append(f"  [{rec['kind']}] {rec['target']} "
                     f"(score {rec['score']:.2f}) — {rec['reason']}")
    return "\n".join(lines)
