"""E7 — Figs. 4/5: the TPC-DS Q72 plan shapes (Section 3.1).

Fig. 4 (MySQL): a left-deep chain of nested-loop joins driven by the
catalog_sales fact table with index lookups into the dimensions, and only
one hash join ("only one of the ten joins is a hash join ... the MySQL
optimizer favors nested loop joins").

Fig. 5 (Orca): a bushy plan where most joins are hash joins, giving the
8.5X improvement the paper reports (we assert the direction and a
meaningful factor, not the absolute number).
"""

from benchmarks.conftest import write_report
from repro.bench.harness import results_match
from repro.workloads.tpcds import tpcds_query


def _count(text, needle):
    return sum(needle in line.lower() for line in text.splitlines())


def test_fig4_fig5_q72_plan_shapes(benchmark, tpcds_db):
    sql = tpcds_query(72)
    mysql_plan = tpcds_db.explain(sql, optimizer="mysql")
    orca_plan = tpcds_db.explain(sql, optimizer="orca")
    write_report("fig4_q72_mysql_plan.txt", mysql_plan)
    write_report("fig5_q72_orca_plan.txt", orca_plan)

    mysql_hash = _count(mysql_plan, "hash join")
    mysql_nlj = _count(mysql_plan, "nested loop")
    orca_hash = (_count(orca_plan, "hash join")
                 + _count(orca_plan, "hash semijoin")
                 + _count(orca_plan, "hash antijoin"))
    orca_nlj = _count(orca_plan, "nested loop")

    # Fig. 4: NLJ-dominated MySQL plan with at most a couple hash joins.
    assert mysql_nlj > mysql_hash
    assert mysql_hash <= 2
    assert _count(mysql_plan, "index lookup") >= 5

    # Fig. 5: Orca uses several hash joins.
    assert orca_hash >= 3
    assert orca_hash > mysql_hash

    def run_both():
        mysql_run = tpcds_db.run(sql, optimizer="mysql")
        orca_run = tpcds_db.run(sql, optimizer="orca")
        return mysql_run, orca_run

    mysql_run, orca_run = benchmark.pedantic(run_both, rounds=1,
                                             iterations=1)
    assert results_match(mysql_run.rows, orca_run.rows)
    mysql_total = mysql_run.compile_seconds + mysql_run.execute_seconds
    orca_total = orca_run.compile_seconds + orca_run.execute_seconds
    factor = mysql_total / max(orca_total, 1e-9)
    write_report("fig4_5_q72_times.txt",
                 f"Q72: MySQL plan {mysql_total:.3f}s, Orca plan "
                 f"{orca_total:.3f}s ({factor:.1f}X; paper: 8.5X)")
    # Direction + meaningful factor (the paper saw 8.5X at SF100).
    assert factor > 1.5, f"Q72 speedup only {factor:.2f}X"
