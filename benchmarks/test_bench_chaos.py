"""BENCH — execution-stage resilience: chaos sweep + governor overhead.

Produces ``benchmarks/results/BENCH_chaos.json`` (committed, so the PR
carries the resilience evidence) and a text summary.  Two parts:

* **Chaos sweep** — the same seeded regime generator as the tier-1
  ``tests/test_chaos.py`` suite, run at bench scale: 320 mixed TPC-H
  statements under injected faults, deadlines, memory caps, and
  cancellations.  Zero non-``ReproError`` escapes; every abort is
  classified to a ``FallbackReason``; the artifact records the mix.
* **Governor overhead** — median TPC-H latency with the execution
  governor enabled (the default: cooperative checkpoints on every
  operator) versus fully disabled.  Acceptance: the median overhead
  across the suite is at most 3%.
"""

import json
import random
import statistics
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, SCALE, write_report
from repro import Database, DatabaseConfig
from repro.errors import ExecutionError, GovernorError, ReproError
from repro.workloads.tpch import TPCH_QUERIES, load_tpch, tpch_query
from tests.test_chaos import (
    _GOVERNOR_ABORTS,
    _draw_regime,
    BASELINE_QUERIES,
    QUERY_POOL,
    SEED,
    STATEMENTS,
)

#: Repetitions per governor mode in the overhead measurement.
OVERHEAD_REPS = 3

#: Acceptance ceiling for the suite-median checkpoint overhead.
MAX_MEDIAN_OVERHEAD_PERCENT = 3.0


def _chaos_sweep(db: Database, rng: random.Random) -> dict:
    """320 statements of randomized abuse; returns the artifact rows."""
    baseline = {q: db.execute(tpch_query(q)) for q in BASELINE_QUERIES}
    executed = aborted = contained = 0
    reasons = {}
    for step in range(STATEMENTS):
        sql = tpch_query(rng.choice(QUERY_POOL))
        regime = _draw_regime(rng)
        db.config.fault_injector = regime["injector"]
        kwargs = dict(regime["kwargs"])
        kwargs["executor_mode"] = rng.choice(("batch", "row"))
        kwargs["use_plan_cache"] = rng.random() < 0.5
        try:
            result = db.run(sql, **kwargs)
            executed += 1
            if result.fallback_reason is not None:
                contained += 1
        except (GovernorError, ExecutionError) as exc:
            aborted += 1
            reason = _GOVERNOR_ABORTS.get(type(exc))
            name = reason.name if reason is not None \
                else "EXEC_RUNTIME_ERROR"
            reasons[name] = reasons.get(name, 0) + 1
        except ReproError as exc:  # classified, but not a governor type
            pytest.fail(f"step {step}: unclassified abort {exc!r}")
        except BaseException as exc:  # noqa: BLE001 — the point
            pytest.fail(f"step {step}: non-ReproError escaped: "
                        f"{type(exc).__name__}: {exc}")
        finally:
            db.config.fault_injector = None
        assert db.active_statements() == {}
    for q in BASELINE_QUERIES:
        assert db.execute(tpch_query(q)) == baseline[q], \
            f"baseline Q{q} diverged after the sweep"
    return {
        "statements": STATEMENTS,
        "executed": executed,
        "aborted": aborted,
        "contained_fallbacks": contained,
        "abort_reasons": dict(sorted(reasons.items())),
    }


def _median_latency_ms(db: Database, sql: str) -> float:
    samples = []
    for __ in range(OVERHEAD_REPS):
        start = time.perf_counter()
        db.run(sql)
        samples.append((time.perf_counter() - start) * 1000.0)
    return statistics.median(samples)


def _overhead_sweep(db: Database) -> dict:
    """Per-query governed/unbounded medians, modes interleaved."""
    rows = {}
    for number in sorted(TPCH_QUERIES):
        sql = tpch_query(number)
        db.run(sql)  # warm the plan cache so both modes compile-hit
        db.config.governor_enabled = False
        off_ms = _median_latency_ms(db, sql)
        db.config.governor_enabled = True
        on_ms = _median_latency_ms(db, sql)
        rows[str(number)] = {
            "off_ms": round(off_ms, 3),
            "on_ms": round(on_ms, 3),
            "overhead_percent":
                round((on_ms - off_ms) / off_ms * 100.0, 2),
        }
    return rows


def _format_report(payload: dict) -> str:
    sweep = payload["chaos"]
    lines = [
        "BENCH — execution-stage resilience (chaos + governor overhead)",
        f"  scale={payload['scale']}  seed={payload['seed']}",
        "",
        f"  chaos sweep: {sweep['statements']} statements — "
        f"{sweep['executed']} succeeded "
        f"({sweep['contained_fallbacks']} via contained fallback), "
        f"{sweep['aborted']} aborted, 0 crashes",
    ]
    for name, count in sweep["abort_reasons"].items():
        lines.append(f"    {name:<24} {count:>4}")
    lines += [
        "",
        "  governor checkpoint overhead (median ms per query):",
        f"    {'query':<8}{'off':>10}{'on':>10}{'overhead':>10}",
    ]
    for number, row in payload["governor_overhead"]["queries"].items():
        lines.append(f"    Q{number:<7}{row['off_ms']:>10.3f}"
                     f"{row['on_ms']:>10.3f}"
                     f"{row['overhead_percent']:>9.2f}%")
    lines.append(
        f"  suite median overhead: "
        f"{payload['governor_overhead']['median_overhead_percent']:.2f}%"
        f"  (ceiling {MAX_MEDIAN_OVERHEAD_PERCENT:.1f}%)")
    return "\n".join(lines)


def test_bench_chaos():
    db = Database(DatabaseConfig(
        orca_compile_budget_seconds=5.0,
        governor_check_interval=32,
    ))
    load_tpch(db, scale=SCALE)

    rng = random.Random(SEED)
    chaos = _chaos_sweep(db, rng)
    assert chaos["executed"] + chaos["aborted"] == STATEMENTS
    assert chaos["executed"] >= 100
    assert chaos["aborted"] >= 30

    # Fresh database for the timing half: no armed injectors, default
    # check interval, nothing left over from the abuse.
    timing_db = Database(DatabaseConfig())
    load_tpch(timing_db, scale=SCALE)
    queries = _overhead_sweep(timing_db)
    median_overhead = statistics.median(
        row["overhead_percent"] for row in queries.values())

    payload = {
        "seed": SEED,
        "scale": SCALE,
        "chaos": chaos,
        "governor_overhead": {
            "reps_per_mode": OVERHEAD_REPS,
            "queries": queries,
            "median_overhead_percent": round(median_overhead, 2),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_chaos.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    write_report("BENCH_chaos.txt", _format_report(payload))

    assert median_overhead <= MAX_MEDIAN_OVERHEAD_PERCENT, (
        f"governor checkpoints cost {median_overhead:.2f}% median "
        f"latency (ceiling {MAX_MEDIAN_OVERHEAD_PERCENT:.1f}%)")
