"""BENCH — optimize-stage cost: plan cache + cost-bound pruning.

Produces ``benchmarks/results/BENCH_plancache.json`` (committed, so the
PR carries before/after optimize-stage medians) and a text summary.
For every TPC-H query it records:

* cold optimize/execute medians (plan cache bypassed) — "before";
* warm optimize/execute medians (served from the cache) — "after";
* cost-model evaluations with and without branch-and-bound pruning.

Assertions mirror the acceptance criteria: warm runs are cache hits,
and the queries whose main block has at least five join units (Q2, Q5,
Q7, Q8, Q9) lose at least 25% of their cost-model evaluations to
pruning while choosing a plan of the same cost.
"""

import json

from benchmarks.conftest import RESULTS_DIR, TIMEOUT, write_report
from repro.bench import format_plan_cache_report, run_suite
from repro.workloads.tpch import TPCH_QUERIES

#: TPC-H queries whose main block joins at least five units.
WIDE_JOIN_QUERIES = (2, 5, 7, 8, 9)


def test_bench_plancache(tpch_db):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_plancache.json"
    result = run_suite(tpch_db, TPCH_QUERIES, "TPC-H",
                       timeout_seconds=TIMEOUT, emit_json=str(path))
    assert all(t.results_match for t in result.timings)

    payload = json.loads(path.read_text())
    write_report("BENCH_plancache.txt",
                 format_plan_cache_report(payload))

    queries = payload["queries"]
    assert len(queries) == len(TPCH_QUERIES)

    # Tentpole (a): every query's warm re-runs are plan-cache hits.
    for number, row in queries.items():
        assert row["warm_hits"] == row["warm_runs"], (
            f"Q{number}: {row['warm_hits']}/{row['warm_runs']} warm hits")

    # Tentpole (b): pruning removes >=25% of cost-model evaluations on
    # the wide joins (soundness — same chosen cost — is asserted by the
    # tier-1 suite; here the artifact records the counters).
    for number in WIDE_JOIN_QUERIES:
        row = queries[str(number)]
        assert row["evaluation_reduction_percent"] >= 25.0, (
            f"Q{number}: only {row['evaluation_reduction_percent']:.1f}% "
            f"fewer evaluations")
        assert row["cost_evaluations_pruned"] < \
            row["cost_evaluations_unpruned"]
        assert row["pruned_candidates"] > 0

    # The artifact the PR commits really is on disk and well-formed.
    assert payload["plan_cache"]["hits"] > 0
    assert payload["pruned_candidates_total"] > 0
