"""BENCH — execute-stage cost: row vs batch executor.

Produces ``benchmarks/results/BENCH_vectorized.json`` (committed, so
the PR carries the row/batch execute-stage medians) and a text summary.
Every query runs under both executor modes against the same Orca plan;
recorded per query are the execute medians, the speedup, and the batch
engine's work counters.

Orca plans are used because its cost-based join selection picks hash
joins (Section 3.1), which are CPU-bound in this engine — exactly where
vectorized execution pays.  MySQL-style index nested-loop plans spend
their time in the simulated B-tree descent (``LOOKUP_PENALTY_LOOPS``),
which no executor change can speed up; those queries are reported in an
``index_bound`` category and asserted only not to regress.

Assertions mirror the acceptance criteria: identical results in both
modes everywhere, nonzero batch/compiled-expression counters on the
scan- and join-heavy queries, and a >=2x median execute-stage speedup
in both the scan-heavy and join-heavy categories.
"""

import json

from benchmarks.conftest import RESULTS_DIR, write_report
from repro.bench import format_executor_report, run_executor_comparison
from repro.workloads.tpch import TPCH_QUERIES

#: Single-table scan + aggregation, no joins: pure vectorization wins.
SCAN_HEAVY = (1, 6)
#: Orca plans join these purely with hash joins (CPU-bound).
JOIN_HEAVY = (10, 13, 14)
#: Orca keeps index nested-loop joins here; the simulated random-read
#: penalty dominates, so batch execution can only match the row engine.
INDEX_BOUND = (3, 12)

BENCH_QUERIES = {n: TPCH_QUERIES[n]
                 for n in SCAN_HEAVY + JOIN_HEAVY + INDEX_BOUND}


def test_bench_vectorized(tpch_db):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_vectorized.json"
    payload = run_executor_comparison(
        tpch_db, BENCH_QUERIES, "TPC-H",
        categories={"scan_heavy": list(SCAN_HEAVY),
                    "join_heavy": list(JOIN_HEAVY),
                    "index_bound": list(INDEX_BOUND)},
        optimizer="orca",
        emit_json=str(path),
    )
    write_report("BENCH_vectorized.txt", format_executor_report(payload))

    recorded = json.loads(path.read_text())
    queries = recorded["queries"]
    assert len(queries) == len(BENCH_QUERIES)

    # Both engines agree on every result set.
    for number, row in queries.items():
        assert row["results_match"], f"Q{number}: results differ"

    # The scan- and join-heavy queries actually ran batched, with live
    # batch and compiled-expression counters.
    for number in SCAN_HEAVY + JOIN_HEAVY:
        row = queries[str(number)]
        assert row["ran_as"] == "batch", f"Q{number} fell back to row"
        assert row["batches"] > 0, f"Q{number}: no batches counted"
        assert row["batch_rows"] > 0, f"Q{number}: no batch rows"
        assert row["compiled_exprs"] > 0, (
            f"Q{number}: no compiled expressions")

    # Acceptance gate: >=2x median execute-stage speedup on both the
    # scan-heavy and the join-heavy categories.
    categories = recorded["categories"]
    assert categories["scan_heavy"]["median_speedup"] >= 2.0, categories
    assert categories["join_heavy"]["median_speedup"] >= 2.0, categories

    # The index-bound queries may not benefit, but must not regress
    # materially either (they are storage-bound in both modes).
    for number in INDEX_BOUND:
        assert queries[str(number)]["speedup"] >= 0.7, (
            f"Q{number} regressed under the batch engine")
