"""A2 — ablation: bushy vs left-deep search in Orca.

Section 7, change 1: MySQL had to grow best-position-array support for
bushy trees to execute Orca's plans at all.  This ablation restricts
Orca's search to left-deep trees (``left_deep_only``) and compares the
chosen plan's estimated cost and the exploration effort on the Q72
snowflake — the query whose Fig. 5 plan is bushy.
"""

from benchmarks.conftest import write_report
from repro.bridge.metadata_provider import MySQLMetadataProvider
from repro.bridge.parse_tree_converter import ParseTreeConverter
from repro.orca.joinorder import JoinSearchMode, SubEstimates
from repro.orca.mdcache import MDAccessor
from repro.orca.optimizer import OrcaConfig, OrcaOptimizer
from repro.selectivity import SelectivityEstimator
from repro.sql.parser import parse_statement
from repro.sql.prepare import prepare
from repro.sql.resolver import Resolver
from repro.workloads.tpcds import tpcds_query


def _optimize_q72(db, left_deep_only):
    stmt = parse_statement(tpcds_query(72))
    block, context = Resolver(db.catalog).resolve(stmt)
    prepare(block)
    provider = MySQLMetadataProvider(db.catalog)
    accessor = MDAccessor(provider)
    converter = ParseTreeConverter(accessor)
    estimator = SelectivityEstimator(accessor, use_histograms=True)
    config = OrcaConfig(search=JoinSearchMode.EXHAUSTIVE2,
                        left_deep_only=left_deep_only)
    logical = converter.convert_block(block)
    return OrcaOptimizer(estimator, config).optimize_block(
        logical, SubEstimates())


def test_bushy_vs_left_deep_on_q72(benchmark, tpcds_db):
    def both():
        return (_optimize_q72(tpcds_db, left_deep_only=False),
                _optimize_q72(tpcds_db, left_deep_only=True))

    bushy, left_deep = benchmark.pedantic(both, rounds=1, iterations=1)

    write_report(
        "ablation_bushy_q72.txt",
        "Q72 search-space ablation:\n"
        f"  bushy (EXHAUSTIVE2): cost={bushy.cost:.1f} "
        f"groups={bushy.memo.group_count} "
        f"alternatives={bushy.memo.total_alternatives}\n"
        f"  left-deep only:      cost={left_deep.cost:.1f} "
        f"groups={left_deep.memo.group_count} "
        f"alternatives={left_deep.memo.total_alternatives}")

    # The bushy search can never pick a worse plan...
    assert bushy.cost <= left_deep.cost * 1.001
    # ...and it explores a genuinely larger space on this snowflake.
    assert bushy.memo.group_count > left_deep.memo.group_count
