"""E5 — Fig. 12: "Orca is slower only on short queries".

Derived from the Fig. 11 run: each query contributes a point
(MySQL run time, Orca/MySQL ratio).  The paper's claim is that the points
above ratio 1 cluster at small MySQL run times — compile overhead and a
partial double optimization dominate only when execution is cheap.
"""

from benchmarks.conftest import (
    run_tpcds_suite,
    session_cache,
    write_report,
)
from repro.bench import format_figure12


def test_fig12_slower_only_on_short_queries(benchmark, tpcds_db):
    cached = session_cache().get("tpcds")
    if cached is None:
        cached = benchmark.pedantic(run_tpcds_suite, args=(tpcds_db,),
                                    rounds=1, iterations=1)
        session_cache()["tpcds"] = cached
    else:
        benchmark.pedantic(lambda: cached, rounds=1, iterations=1)
    result = cached
    write_report("fig12_scatter.txt", format_figure12(result))

    slower = [t for t in result.timings if t.ratio > 1.0]
    faster = [t for t in result.timings if t.ratio <= 1.0]
    assert faster, "Orca never won?"
    if not slower:
        return  # even stronger than the paper; nothing left to check

    # The queries where Orca loses are short ones: their median MySQL
    # run time sits well below the winners' median.
    def median(values):
        ordered = sorted(values)
        return ordered[len(ordered) // 2]

    median_slower = median([t.mysql_seconds for t in slower])
    median_faster = median([t.mysql_seconds for t in faster])
    assert median_slower <= median_faster, (
        f"Orca losses are not concentrated on short queries: "
        f"median(losses)={median_slower:.3f}s "
        f"median(wins)={median_faster:.3f}s")

    # And no *long* query may lose badly: ratio > 2 only below the
    # suite's median MySQL time.
    overall_median = median([t.mysql_seconds for t in result.timings])
    for timing in slower:
        if timing.ratio > 2.0:
            assert timing.mysql_seconds <= overall_median, (
                f"Q{timing.number} is long ({timing.mysql_seconds:.2f}s) "
                f"yet {timing.ratio:.1f}X slower with Orca")
