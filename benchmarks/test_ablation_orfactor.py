"""A3 — ablation: OR factorization on the Q41/Q19 predicate patterns.

Section 6.2 explains Q41's 222X with the rewrite of
``(m = i1.m AND x) OR (m = i1.m AND y)`` into ``m = i1.m AND (x OR y)``;
Section 7 lesson 4 notes the same rewrite enables hash joins (TPC-H Q19's
pattern).  This ablation runs Orca with the rewrite disabled and compares.
"""

from benchmarks.conftest import write_report
from repro.bench.harness import results_match
from repro.orca.joinorder import JoinSearchMode
from repro.orca.optimizer import OrcaConfig


def _run_orca_with_config(db, sql, orca_config):
    """Compile+run through the Orca router with an explicit config."""
    import time

    from repro.bridge.router import OrcaRouter
    from repro.mysql_optimizer.refinement import PlanBuilder
    from repro.sql.parser import parse_statement
    from repro.sql.prepare import prepare
    from repro.sql.resolver import Resolver

    start = time.perf_counter()
    stmt = parse_statement(sql)
    block, context = Resolver(db.catalog).resolve(stmt)
    prepare(block)
    router = OrcaRouter(db.catalog, db.config, orca_config)
    skeleton = router.optimize(stmt, block, context)
    assert skeleton is not None
    executor = PlanBuilder(skeleton, db.catalog, db.storage).build()
    rows = executor.execute()
    return rows, time.perf_counter() - start


def test_or_factorization_on_q19(benchmark, tpch_db):
    from repro.workloads.tpch import tpch_query

    sql = tpch_query(19)
    with_rewrite = OrcaConfig(search=JoinSearchMode.EXHAUSTIVE2)
    without_rewrite = OrcaConfig(search=JoinSearchMode.EXHAUSTIVE2,
                                 enable_or_factorization=False)

    def both():
        return (_run_orca_with_config(tpch_db, sql, with_rewrite),
                _run_orca_with_config(tpch_db, sql, without_rewrite))

    (rows_on, time_on), (rows_off, time_off) = benchmark.pedantic(
        both, rounds=1, iterations=1)
    assert results_match(rows_on, rows_off)
    write_report(
        "ablation_orfactor_q19.txt",
        f"TPC-H Q19 with OR factorization: {time_on:.3f}s; "
        f"without: {time_off:.3f}s "
        f"({time_off / max(time_on, 1e-9):.1f}X)")
    # The factored form must not be slower, and typically wins big: the
    # common p_partkey = l_partkey factor becomes a hash-join key.
    assert time_on <= time_off * 1.2
    assert time_off / max(time_on, 1e-9) > 2.0, (
        "expected a substantial win from factorization on Q19")


def test_or_factorization_on_q41(benchmark, tpcds_db):
    from repro.workloads.tpcds import tpcds_query

    sql = tpcds_query(41)
    with_rewrite = OrcaConfig(search=JoinSearchMode.EXHAUSTIVE2)
    without_rewrite = OrcaConfig(search=JoinSearchMode.EXHAUSTIVE2,
                                 enable_or_factorization=False)

    def both():
        return (_run_orca_with_config(tpcds_db, sql, with_rewrite),
                _run_orca_with_config(tpcds_db, sql, without_rewrite))

    (rows_on, time_on), (rows_off, time_off) = benchmark.pedantic(
        both, rounds=1, iterations=1)
    assert results_match(rows_on, rows_off)
    write_report(
        "ablation_orfactor_q41.txt",
        f"TPC-DS Q41 with OR factorization: {time_on:.3f}s; "
        f"without: {time_off:.3f}s")
    # "The two plans are identical otherwise" (Section 6.2) — the win
    # comes from evaluating the bail-out once, so factored must not lose.
    assert time_on <= time_off * 1.2
