"""BENCH — the cost of always-on parallel-execution telemetry.

Produces ``benchmarks/results/BENCH_partelemetry.json`` (committed, so
the PR carries the overhead evidence) and a text summary.  Two
identically loaded TPC-H databases run the same warmed mix — one with
every optional telemetry surface on (flight recorder + watchdog,
workload tracking; the shipped defaults), one with all of them
stripped.  The headline gate: the suite-median per-query overhead of
the telemetry stays within ``MAX_MEDIAN_OVERHEAD_PERCENT``.

Per-query minima are the estimator (noise-robust), and the same gate
is *recorded but not asserted* for the 4-worker parallel subset —
fork/exec jitter across worker pools is far larger than the telemetry
delta, so the artifact carries the honest number while the hard gate
stays on the stable serial mix.
"""

import json

from benchmarks.conftest import RESULTS_DIR, SCALE, write_report
from repro.bench import measure_telemetry_overhead

SEED = 20260808

#: Acceptance ceiling: suite-median telemetry overhead on the serial
#: TPC-H mix (the committed artifact records the actual figure).
MAX_MEDIAN_OVERHEAD_PERCENT = 3.0


def _format_report(payload: dict) -> str:
    lines = ["BENCH: always-on telemetry overhead on TPC-H",
             "=" * 45,
             f"scale {payload['scale']}  seed {payload['seed']}  "
             f"mix {payload['mix']}  "
             f"{payload['runs_per_query']} runs/query",
             "",
             "serial mix (per-query minima)",
             "query    telemetry      stripped      overhead"]
    for row in payload["serial"]:
        lines.append(f"Q{row['query']:<4} "
                     f"{row['telemetry_seconds'] * 1000:>9.3f} ms "
                     f"{row['stripped_seconds'] * 1000:>10.3f} ms "
                     f"{row['overhead_percent']:>+10.2f}%")
    lines.append(f"median overhead: "
                 f"{payload['median_overhead_percent']:+.2f}% "
                 f"(ceiling {MAX_MEDIAN_OVERHEAD_PERCENT:.1f}%)")
    lines.append("")
    lines.append(f"parallel subset at "
                 f"{payload['parallel_workers']} workers (recorded, "
                 f"not gated)")
    for row in payload["parallel"]:
        lines.append(f"Q{row['query']:<4} "
                     f"{row['telemetry_seconds'] * 1000:>9.3f} ms "
                     f"{row['stripped_seconds'] * 1000:>10.3f} ms "
                     f"{row['overhead_percent']:>+10.2f}%")
    lines.append(f"parallel median overhead: "
                 f"{payload['parallel_median_overhead_percent']:+.2f}%")
    flight = payload["flight_state"]
    lines.append("")
    lines.append(f"flight recorder after the telemetry run: "
                 f"{flight['records']} records, "
                 f"{flight['snapshots']} snapshots, "
                 f"{int(flight['watchdog_findings'])} watchdog findings")
    return "\n".join(lines)


def test_bench_parallel_telemetry_overhead():
    payload = measure_telemetry_overhead(scale=SCALE * 0.2, seed=SEED,
                                         runs_per_query=5,
                                         parallel_workers=4,
                                         progress=print)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_partelemetry.json").write_text(
        json.dumps(payload, indent=2, default=str) + "\n")
    write_report("BENCH_partelemetry.txt", _format_report(payload))

    # The telemetry run actually exercised the surfaces being priced.
    flight = payload["flight_state"]
    assert flight["records"] > 0
    # Every query ran on both engines and produced a positive minimum.
    for row in payload["serial"] + payload["parallel"]:
        assert row["telemetry_seconds"] > 0
        assert row["stripped_seconds"] > 0
    # The acceptance gate: suite-median overhead of always-on
    # telemetry on the stable serial mix.
    assert payload["median_overhead_percent"] \
        <= MAX_MEDIAN_OVERHEAD_PERCENT, (
            f"telemetry overhead "
            f"{payload['median_overhead_percent']:.2f}% exceeds "
            f"{MAX_MEDIAN_OVERHEAD_PERCENT}%")
