"""A6 — ablation: threshold routing vs the paper's future-work policy.

Section 9's first alternative: "Orca can be invoked after MySQL's
cost-based optimization has been performed, but only if the estimated
cost of the MySQL plan is above some threshold ... almost certainly
better than our three-table heuristic."  This repository implements that
policy (``DatabaseConfig.routing = "cost_based"``); the ablation compares
it against the shipped three-table heuristic on a mixed TPC-H subset.
"""

from benchmarks.conftest import write_report
from repro.workloads.tpch import TPCH_QUERIES

#: Mixed subset: short single-table queries where the detour is pure
#: overhead, plus the queries whose MySQL plans are expensive.
MIX = (1, 4, 6, 9, 13, 17, 18, 19, 20, 22)


def _run_mix(db):
    total = 0.0
    routed = []
    for number in MIX:
        outcome = db.run(TPCH_QUERIES[number])
        total += outcome.compile_seconds + outcome.execute_seconds
        if outcome.optimizer_used == "orca":
            routed.append(number)
    return total, routed


def test_cost_based_routing_beats_threshold(benchmark, tpch_db):
    def compare():
        original_routing = tpch_db.config.routing
        original_threshold = tpch_db.config.complex_query_threshold
        try:
            tpch_db.config.routing = "threshold"
            threshold_total, threshold_routed = _run_mix(tpch_db)
            tpch_db.config.routing = "cost_based"
            tpch_db.config.mysql_cost_threshold = 5000.0
            cost_total, cost_routed = _run_mix(tpch_db)
        finally:
            tpch_db.config.routing = original_routing
            tpch_db.config.complex_query_threshold = original_threshold
        return (threshold_total, threshold_routed,
                cost_total, cost_routed)

    threshold_total, threshold_routed, cost_total, cost_routed = \
        benchmark.pedantic(compare, rounds=1, iterations=1)

    write_report(
        "ablation_routing.txt",
        "Routing-policy ablation (Section 9 future work):\n"
        f"  three-table heuristic: {threshold_total:.3f}s, routed "
        f"{sorted(threshold_routed)}\n"
        f"  cost-based trigger:    {cost_total:.3f}s, routed "
        f"{sorted(cost_routed)}")

    # The cost-based policy must catch the expensive queries...
    assert 19 in cost_routed, "Q19's catastrophic MySQL plan not caught"
    # ...while skipping the detour for cheap multi-table queries the
    # three-table heuristic routes pointlessly.
    assert len(cost_routed) <= len(threshold_routed) + 1
    # Net: not slower than the shipped heuristic (usually faster).
    assert cost_total <= threshold_total * 1.25
