"""E6/E9 — Table 1: Orca query compilation overhead.

The paper measures total EXPLAIN time for both suites with the complex
query threshold set to 1 (every query takes the Orca detour) under three
compilers: MySQL alone, MySQL+Orca with EXHAUSTIVE, and with EXHAUSTIVE2.

Shapes asserted (Section 6.3's four observations):

1. Orca compilations are significantly slower than MySQL compilations;
2. on TPC-H, EXHAUSTIVE2 adds no meaningful overhead over EXHAUSTIVE;
3. on TPC-DS, EXHAUSTIVE2 is noticeably slower, and the overhead is
   concentrated in the widest-join queries (Q64's 18-way CTE join —
   the paper's Q14/Q64 observation);
4. the overhead is worth it (that part is Figs. 10/11's job).
"""

import time

from benchmarks.conftest import write_report
from repro.bench import format_table1, run_compile_suite
from repro.workloads.tpch import TPCH_QUERIES
from repro.workloads.tpcds import TPCDS_QUERIES


def _configurations(db):
    def mysql():
        pass

    def exhaustive():
        db.config.orca_search = "EXHAUSTIVE"

    def exhaustive2():
        db.config.orca_search = "EXHAUSTIVE2"

    return {
        "MySQL": mysql,
        "MySQL + Orca-EXHAUSTIVE": exhaustive,
        "MySQL + Orca-EXHAUSTIVE2": exhaustive2,
    }


def _compile_both(tpch_db, tpcds_db):
    # Threshold 1: "all of the queries take the Orca detours".
    tpch_db.config.complex_query_threshold = 1
    tpcds_db.config.complex_query_threshold = 1
    try:
        tpch_totals = run_compile_suite(tpch_db, TPCH_QUERIES,
                                        _configurations(tpch_db))
        tpcds_totals = run_compile_suite(tpcds_db, TPCDS_QUERIES,
                                         _configurations(tpcds_db))
    finally:
        tpch_db.config.complex_query_threshold = 3
        tpcds_db.config.complex_query_threshold = 2
        tpch_db.config.orca_search = "EXHAUSTIVE2"
        tpcds_db.config.orca_search = "EXHAUSTIVE2"
    return tpch_totals, tpcds_totals


def test_table1_compile_overhead(benchmark, tpch_db, tpcds_db):
    tpch_totals, tpcds_totals = benchmark.pedantic(
        _compile_both, args=(tpch_db, tpcds_db), rounds=1, iterations=1)
    write_report("table1_compile.txt",
                 format_table1(tpch_totals, tpcds_totals))

    # (1) Orca compilation is significantly slower than MySQL's.  (The
    # paper's ratios are 12X / 44X; here the shared Python frontend —
    # parse/resolve/prepare — dominates both paths, compressing the
    # ratio, but the direction and the per-strategy ordering hold.)
    assert tpch_totals["MySQL + Orca-EXHAUSTIVE"] > \
        1.5 * tpch_totals["MySQL"]
    assert tpcds_totals["MySQL + Orca-EXHAUSTIVE"] > \
        1.3 * tpcds_totals["MySQL"]

    # (2) On TPC-H the two Orca strategies are close (within 2X).
    tpch_ratio = (tpch_totals["MySQL + Orca-EXHAUSTIVE2"]
                  / tpch_totals["MySQL + Orca-EXHAUSTIVE"])
    assert tpch_ratio < 2.0, f"TPC-H EXHAUSTIVE2/EXHAUSTIVE = {tpch_ratio}"

    # (3) On TPC-DS EXHAUSTIVE2 costs noticeably more.
    assert tpcds_totals["MySQL + Orca-EXHAUSTIVE2"] > \
        tpcds_totals["MySQL + Orca-EXHAUSTIVE"]


def test_overhead_concentrated_in_widest_joins(benchmark, tpcds_db):
    """E9: the EXHAUSTIVE2 overhead comes from the widest-join queries."""
    tpcds_db.config.complex_query_threshold = 1
    try:
        def sweep():
            per_query = {}
            for number in sorted(TPCDS_QUERIES):
                deltas = {}
                for mode in ("EXHAUSTIVE", "EXHAUSTIVE2"):
                    tpcds_db.config.orca_search = mode
                    start = time.perf_counter()
                    tpcds_db.compile_only(TPCDS_QUERIES[number],
                                          optimizer="orca")
                    deltas[mode] = time.perf_counter() - start
                per_query[number] = (deltas["EXHAUSTIVE2"]
                                     - deltas["EXHAUSTIVE"])
            return per_query

        per_query = benchmark.pedantic(sweep, rounds=1, iterations=1)
        ranked = sorted(per_query, key=per_query.get, reverse=True)
        top5 = ranked[:5]
        lines = ["EXHAUSTIVE2 - EXHAUSTIVE compile delta, top 10:"]
        for number in ranked[:10]:
            lines.append(f"  Q{number}: {per_query[number] * 1000:.1f} ms")
        write_report("table1_per_query_delta.txt", "\n".join(lines))
        # The paper attributes the overhead to Q14 and Q64 (CTEs with
        # multi-way joins); our widest joins are Q64's cross_sales and the
        # Q72 snowflake — one of the known wide queries must lead.
        assert set(top5) & {64, 72, 14, 31, 24, 17}, (
            f"unexpected compile-overhead leaders: {top5}")
    finally:
        tpcds_db.config.complex_query_threshold = 2
        tpcds_db.config.orca_search = "EXHAUSTIVE2"
