"""A4 — ablation: histogram fidelity (Sections 5.5 and 7).

The integration lifted MySQL's no-histograms-on-UNIQUE-columns rule and
taught Orca equi-height *string* histograms.  This ablation compares
Orca's selectivity estimates against truth with full histograms, and with
statistics stripped of histograms (ANALYZE ... without histograms).
"""

import pytest

from benchmarks.conftest import SCALE, write_report
from repro import Database, DatabaseConfig
from repro.selectivity import SelectivityEstimator
from repro.sql.parser import parse_statement
from repro.sql.prepare import prepare
from repro.sql.resolver import Resolver
from repro.workloads.tpch import load_tpch

PROBES = [
    # (condition, truth function over the lineitem heap)
    ("l_quantity < 10", lambda row: row[4] < 10),
    ("l_extendedprice > 150000", lambda row: row[5] > 150000),
    ("l_shipdate < DATE '1994-01-01'",
     lambda row: row[10].isoformat() < "1994-01-01"),
    ("l_discount BETWEEN 0.05 AND 0.07",
     lambda row: 0.05 <= row[6] <= 0.07),
    ("l_shipmode = 'AIR'", lambda row: row[14] == "AIR"),
]


def _estimation_error(db, use_histograms):
    estimator = SelectivityEstimator(db.catalog, use_histograms)
    heap = db.storage.heap("lineitem").rows
    total_error = 0.0
    for condition, truth in PROBES:
        stmt = parse_statement(
            f"SELECT 1 FROM lineitem WHERE {condition}")
        block, __ = Resolver(db.catalog).resolve(stmt)
        prepare(block)
        estimate = estimator.conjunct_selectivity(
            block, block.where_conjuncts[0])
        actual = sum(1 for row in heap if truth(row)) / len(heap)
        total_error += abs(estimate - actual)
    return total_error / len(PROBES)


def test_histograms_reduce_estimation_error(benchmark):
    def measure():
        db = Database(DatabaseConfig())
        load_tpch(db, scale=min(SCALE, 0.5))
        with_histograms = _estimation_error(db, use_histograms=True)
        without = _estimation_error(db, use_histograms=False)
        return with_histograms, without

    with_h, without_h = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_report(
        "ablation_histograms.txt",
        f"mean |estimate - actual| over {len(PROBES)} probes:\n"
        f"  with histograms:    {with_h:.4f}\n"
        f"  without histograms: {without_h:.4f}")
    assert with_h < without_h, (
        "histogram-backed estimation should beat the heuristics")
    assert with_h < 0.08, f"histogram error too large: {with_h:.4f}"
