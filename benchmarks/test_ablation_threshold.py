"""A5 — ablation: the complex-query threshold (Sections 4.1, 9).

The integration routes a query to Orca when its table-reference count
reaches the threshold (3 by default; 2 for the paper's TPC-DS run; 1 in
the Table 1 compile experiment).  The paper's future-work section admits
the heuristic is crude.  This ablation sweeps the threshold over a mixed
query set and reports total time and routing counts per setting.
"""

from benchmarks.conftest import write_report
from repro.workloads.tpch import TPCH_QUERIES

#: A complexity mix: single-table (Q1, Q6), mid (Q3, Q4, Q12, Q14), and
#: wide (Q5, Q10).
MIX = (1, 3, 4, 5, 6, 10, 12, 14)


def test_threshold_sweep(benchmark, tpch_db):
    def sweep():
        results = {}
        original = tpch_db.config.complex_query_threshold
        try:
            for threshold in (1, 2, 3, 4, 5, 99):
                tpch_db.config.complex_query_threshold = threshold
                total = 0.0
                routed = 0
                for number in MIX:
                    outcome = tpch_db.run(TPCH_QUERIES[number])
                    total += outcome.compile_seconds \
                        + outcome.execute_seconds
                    if outcome.optimizer_used == "orca":
                        routed += 1
                results[threshold] = (total, routed)
        finally:
            tpch_db.config.complex_query_threshold = original
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["threshold | total(s) | queries routed to Orca"]
    for threshold, (total, routed) in results.items():
        lines.append(f"{threshold:>9} | {total:>8.3f} | {routed}")
    write_report("ablation_threshold.txt", "\n".join(lines))

    # Monotone routing: a higher threshold never routes more queries.
    routed_counts = [routed for __, routed in results.values()]
    assert routed_counts == sorted(routed_counts, reverse=True)
    # Threshold 99 routes nothing; threshold 1 routes everything.
    assert results[99][1] == 0
    assert results[1][1] == len(MIX)
