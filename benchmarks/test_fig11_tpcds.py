"""E3/E4 — Fig. 11: execution time for the 99 TPC-DS queries.

Paper's findings (Section 6.2) and the shape asserted here:

* Orca produces better plans for about two thirds of the 99 queries and
  cuts the total run time by 62%;
* ten queries get >=10X and three (Q1, Q6, Q41) >=100X speedups — here the
  corresponding *large multiple* wins must include the same mechanism
  queries (hash-join choices on Q1/Q6, OR factorization on Q41);
* every query returns identical results under both optimizers.
"""

from benchmarks.conftest import run_tpcds_suite, session_cache, \
    write_report
from repro.bench import format_figure11, summarize


def test_fig11_tpcds_execution_times(benchmark, tpcds_db):
    result = benchmark.pedantic(run_tpcds_suite, args=(tpcds_db,),
                                rounds=1, iterations=1)
    session_cache()["tpcds"] = result
    write_report("fig11_tpcds.txt", format_figure11(result))
    headline = summarize(result)

    assert not headline["mismatches"], headline["mismatches"]

    # Total reduction: the paper reports 62%; measured runs of this
    # reproduction land remarkably close (~65%).
    assert result.total_reduction_percent > 25.0, (
        f"only {result.total_reduction_percent:.0f}% total reduction")

    # Orca wins on a large share of the queries (the paper: two thirds;
    # at memory-resident mini scale, compile overhead eats some short-
    # query wins — the Fig. 12 effect — so the bar sits a bit lower).
    assert headline["orca_wins"] >= 35, headline

    # Big-multiple wins exist (the paper's 10X/100X club; the absolute
    # multiples compress with the data scale).
    assert result.wins(5.0), "no >=5X Orca wins at all"
    assert result.wins(10.0), "no >=10X Orca wins at all"

    # The mechanism queries the paper singles out go in Orca's favour:
    # Q1/Q81 (hash joins over the CTE + correlated average).
    by_number = {t.number: t for t in result.timings}
    assert by_number[1].speedup > 1.0 or by_number[81].speedup > 1.0, (
        (by_number[1].speedup, by_number[81].speedup))
