"""BENCH — morsel-driven parallel execution over the column store.

Produces ``benchmarks/results/BENCH_parallel.json`` (committed, so the
PR carries the scaling curve) and a text summary.  Q1/Q6 (scan-heavy)
and Q10/Q13 (join-heavy) run at 1/2/4/8 workers against the same Orca
plans; recorded per query are the execute-stage medians per worker
count, the speedup over serial, morsel counts, and a *bit-exact*
result-identity check against the serial run.

Two further context rows ride along: the zone-map chunk-skip rate on a
selective clustered-range query, and a same-run serial comparison
against a database loaded identically with the column store disabled
(the legacy heap-transpose path — i.e. the pre-change baseline).

Assertions are split by what they depend on:

* correctness (bit-identical results at every worker count, zone maps
  pruning chunks, serial parity with the heap baseline) is asserted
  unconditionally;
* the >=2x speedup gate at 4 workers needs >=4 usable cores — on
  smaller hosts the honest scaling curve is still recorded in the
  artifact (with the core count), but the gate is skipped.
"""

import json
import os

from benchmarks.conftest import SCALE, RESULTS_DIR, write_report
from repro import Database, DatabaseConfig
from repro.bench import format_parallel_report, run_parallel_scaling
from repro.workloads.tpch import TPCH_QUERIES, load_tpch

SCAN_HEAVY = (1, 6)
JOIN_HEAVY = (10, 13)
BENCH_QUERIES = {n: TPCH_QUERIES[n] for n in SCAN_HEAVY + JOIN_HEAVY}
WORKER_COUNTS = (1, 2, 4, 8)

#: Morsel size for the scaling runs: small enough that even the 0.25
#: smoke scale splits lineitem into dozens of morsels (load balancing
#: needs many more work units than workers).  The heap baseline uses
#: the same size so the serial-parity comparison is like-for-like.
BATCH_SIZE = 256

#: TPC-H dates are uniform random per order, so date predicates cannot
#: zone-skip; ``l_orderkey`` is insertion-clustered, so a key range
#: touches a contiguous run of chunks and prunes the rest.  The range
#: keeps ~30% of the table — selective enough that zone maps prune
#: most chunks, unselective enough that the optimizer stays on the
#: table scan instead of the PRIMARY index range (where zone maps do
#: not apply).  The cutoff is computed from the loaded data because
#: the key domain grows with ``REPRO_BENCH_SCALE``.
ZONE_QUERY_TEMPLATE = ("SELECT COUNT(*), SUM(l_extendedprice) "
                       "FROM lineitem WHERE l_orderkey > {cutoff}")


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux
        return os.cpu_count() or 1


def test_bench_parallel():
    db = Database(DatabaseConfig(complex_query_threshold=3,
                                 orca_search="EXHAUSTIVE2",
                                 batch_size=BATCH_SIZE))
    load_tpch(db, scale=SCALE)
    heap_db = Database(DatabaseConfig(complex_query_threshold=3,
                                      orca_search="EXHAUSTIVE2",
                                      batch_size=BATCH_SIZE,
                                      columnstore_enabled=False))
    load_tpch(heap_db, scale=SCALE)

    max_key = db.execute("SELECT MAX(l_orderkey) FROM lineitem")[0][0]
    zone_query = ZONE_QUERY_TEMPLATE.format(cutoff=int(max_key * 0.7))

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_parallel.json"
    payload = run_parallel_scaling(
        db, BENCH_QUERIES, "TPC-H",
        worker_counts=list(WORKER_COUNTS),
        optimizer="orca",
        zone_query=zone_query,
        baseline_db=heap_db,
        emit_json=str(path),
    )
    write_report("BENCH_parallel.txt", format_parallel_report(payload))

    recorded = json.loads(path.read_text())
    queries = recorded["queries"]
    assert len(queries) == len(BENCH_QUERIES)

    # Bit-exact identity: every worker count produced exactly the
    # serial rows, in the serial order.
    for number, row in queries.items():
        assert row["results_identical"], f"Q{number}: results diverged"

    # The scans actually split into many morsels (load balancing needs
    # more work units than workers).
    for number in SCAN_HEAVY:
        assert queries[str(number)]["morsels_at_max_workers"] \
            > max(WORKER_COUNTS), f"Q{number}: too few morsels"

    # Zone maps prune chunks on the selective clustered-range query.
    zone = recorded["zone_map"]
    assert zone is not None and zone["chunks_skipped"] > 0, zone

    # Serial parity: the columnar scan path must not cost more than a
    # sliver over the legacy heap path at workers=1 (it avoids the
    # per-batch transposition, so it is usually *faster*).  Median over
    # the suite to keep single-query scheduler noise out of the gate.
    ratios = sorted(row["serial_vs_baseline"]
                    for row in queries.values())
    mid = len(ratios) // 2
    suite_ratio = ratios[mid] if len(ratios) % 2 else \
        0.5 * (ratios[mid - 1] + ratios[mid])
    assert suite_ratio <= 1.05, (
        f"serial columnstore path regressed {suite_ratio:.3f}x "
        f"vs heap baseline: {ratios}")

    # Speedup gate — only meaningful with real cores to scale onto.
    cores = recorded["host_cores"]
    if cores >= 4:
        for number in SCAN_HEAVY:
            speedup = queries[str(number)]["speedup_vs_serial"]["4"]
            assert speedup >= 2.0, (
                f"Q{number}: {speedup:.2f}x at 4 workers "
                f"on {cores} cores")
    else:
        print(f"\n[speedup gate skipped: {cores} usable core(s); "
              f"curve recorded in {path.name}]")
