"""E8 — Figs. 6/7 and Listing 7: TPC-H Q17 through the plan converter.

The paper uses Q17 to illustrate the two-pass Orca->MySQL plan
translation: the correlated AVG subquery becomes a derived table
(``derived_1_2``), leaves map into two query blocks' best-position arrays,
and the executable plan materialises the derived table per outer row
("Materialize (invalidate on row from part)") while probing lineitem
through the ``lineitem_fk2`` index.
"""

from benchmarks.conftest import write_report
from repro.bench.harness import results_match
from repro.bridge.router import OrcaRouter
from repro.executor.plan import AccessMethod
from repro.sql.parser import parse_statement
from repro.sql.prepare import prepare
from repro.sql.resolver import Resolver
from repro.workloads.tpch import tpch_query


def test_fig6_7_q17_translation(benchmark, tpch_db):
    sql = tpch_query(17)

    # Drive the Orca detour by hand to inspect the skeleton.
    stmt = parse_statement(sql)
    block, context = Resolver(tpch_db.catalog).resolve(stmt)
    prepare(block)
    router = OrcaRouter(tpch_db.catalog, tpch_db.config)
    skeleton = router.optimize(stmt, block, context)
    assert skeleton is not None, "Orca fell back unexpectedly"

    # Fig. 7: two best-position arrays — the outer block's and the
    # derived subquery block's.
    block_skeletons = [s for s in skeleton.blocks.values()
                       if s.positions]
    assert len(block_skeletons) == 2

    outer = skeleton.skeleton_for(block)
    aliases = [context.entry(p.entry_id).alias for p in outer.positions]
    # Fig. 7's outer array: [part, derived_1_2, lineitem] — part drives,
    # the derived table and lineitem follow (order of the last two is
    # cost-dependent).
    assert aliases[0] == "part"
    assert any(alias.startswith("derived_") for alias in aliases)
    assert "lineitem" in aliases

    # The derived block's (trivial) array holds just the inner lineitem.
    inner = next(s for s in block_skeletons if s is not outer)
    assert len(inner.positions) == 1
    inner_access = inner.positions[0].access
    # Listing 7: the subquery probes lineitem_fk2 keyed on p_partkey.
    assert inner_access.method is AccessMethod.INDEX_LOOKUP
    assert inner_access.index_name == "lineitem_fk2"

    # Listing 7's executable plan artifacts.
    explain_text = tpch_db.explain(sql, optimizer="orca")
    write_report("fig6_7_q17_plan.txt", explain_text)
    assert explain_text.startswith("EXPLAIN (ORCA)")
    assert "invalidate on row from" in explain_text
    assert "derived_" in explain_text
    assert "lineitem_fk2" in explain_text

    def run_both():
        return (tpch_db.run(sql, optimizer="mysql"),
                tpch_db.run(sql, optimizer="orca"))

    mysql_run, orca_run = benchmark.pedantic(run_both, rounds=1,
                                             iterations=1)
    assert results_match(mysql_run.rows, orca_run.rows)
