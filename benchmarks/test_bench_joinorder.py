"""Large-join strategy benchmark: compile-time curves, optimality,
budget-respecting wide joins, and the forced-DP head-to-head.

Run explicitly (not part of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_joinorder.py -v

Emits ``BENCH_joinorder.json`` / ``BENCH_joinorder.txt`` under
``benchmarks/results/`` and asserts the acceptance gates of the
large-join PR on the freshly recorded payload:

* adaptive selection at 20 relations optimizes >= 10x faster than
  forcing full DP down its budget-abort path;
* LINDP and GOO plan cost stays within 1.1x of full DP on every
  DP-feasible (n <= 12) topology;
* wide joins under a tight compile budget never escape to the MySQL
  fallback — they degrade to the best Orca incumbent instead.
"""

from benchmarks.conftest import RESULTS_DIR, SCALE, write_report

from repro.bench import format_joinorder_report, run_joinorder_bench

CURVE_POINTS = (
    ("chain", 10), ("chain", 20), ("chain", 30), ("chain", 50),
    ("star", 10), ("star", 20), ("star", 40),
    ("snowflake", 16), ("snowflake", 31),
    ("clique", 10), ("clique", 14),
)
OPTIMALITY_POINTS = (
    ("chain", 8), ("chain", 10), ("chain", 12),
    ("star", 8), ("star", 10), ("star", 12),
    ("snowflake", 10), ("snowflake", 12),
    ("clique", 8), ("clique", 10),
)
BUDGET_POINTS = (
    ("chain", 30), ("chain", 50), ("star", 40),
    ("snowflake", 31), ("clique", 20),
)


def test_joinorder_bench():
    payload = run_joinorder_bench(
        CURVE_POINTS,
        OPTIMALITY_POINTS,
        BUDGET_POINTS,
        dp_comparison_point=("chain", 20),
        scale=SCALE,
        progress=print,
        emit_json=str(RESULTS_DIR / "BENCH_joinorder.json"),
    )
    write_report("BENCH_joinorder.txt", format_joinorder_report(payload))

    # Gate 1: at 20+ relations the adaptive selector beats forced full
    # DP (which burns its whole budget before degrading) by >= 10x.
    comp = payload["dp_comparison"]
    assert comp["speedup"] >= 10.0, comp
    assert comp["results_identical"], comp
    assert comp["dp_optimizer_used"] == "orca", comp

    # Gate 2: polynomial strategies stay near-optimal where full DP is
    # feasible — plan cost within 1.1x of the DP reference.
    for entry in payload["optimality"]:
        for name in ("lindp", "goo"):
            assert entry["cost_ratio_vs_dp"][name] <= 1.1, entry

    # Gate 3: no MySQL-fallback escapes on wide joins under a tight
    # compile budget; a blown budget degrades to the Orca incumbent.
    for row in payload["budget"]:
        assert row["optimizer_used"] == "orca", row
        assert row["fallback_reason"] is None, row
        assert row["rows"] == 1, row
