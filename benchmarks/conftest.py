"""Shared fixtures for the paper-reproduction benchmarks.

Environment knobs:

* ``REPRO_BENCH_SCALE``  — data scale factor (default 1.0; the mini scale
  documented in DESIGN.md).  Use 0.25 for a quick smoke pass.
* ``REPRO_BENCH_TIMEOUT`` — per-query soft timeout in seconds (default
  180).  A query that exceeds it is recorded at the cap, like the paper's
  TPC-DS Q1 MySQL run that was "cancelled after 600 sec".

Formatted reports are printed and written under ``benchmarks/results/``.
"""

import os
import pathlib

import pytest

from repro import Database, DatabaseConfig
from repro.bench import run_suite
from repro.workloads.tpch import TPCH_QUERIES, load_tpch
from repro.workloads.tpcds import TPCDS_QUERIES, load_tpcds

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
TIMEOUT = float(os.environ.get("REPRO_BENCH_TIMEOUT", "180"))
RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Cross-file cache so Fig. 12 reuses Fig. 11's suite run.
_SESSION_CACHE = {}


def session_cache():
    return _SESSION_CACHE


def write_report(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def tpch_db():
    db = Database(DatabaseConfig(complex_query_threshold=3,
                                 orca_search="EXHAUSTIVE2"))
    load_tpch(db, scale=SCALE)
    return db


@pytest.fixture(scope="session")
def tpcds_db():
    # Section 6.2 ran TPC-DS with the threshold set to 2.
    db = Database(DatabaseConfig(complex_query_threshold=2,
                                 orca_search="EXHAUSTIVE2"))
    load_tpcds(db, scale=SCALE)
    return db


def run_tpch_suite(db):
    return run_suite(db, TPCH_QUERIES, "TPC-H",
                     timeout_seconds=TIMEOUT)


def run_tpcds_suite(db):
    return run_suite(db, TPCDS_QUERIES, "TPC-DS",
                     timeout_seconds=TIMEOUT)
