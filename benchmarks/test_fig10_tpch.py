"""E1/E2 — Fig. 10: execution time for the 22 TPC-H queries.

Paper's findings (Section 6.1) and the shape asserted here:

* total run time reduces modestly with Orca (16% in the paper);
* Q21 and Q13 show the largest Orca improvements (2.6X / 2X);
* Q16 is the counter-example where MySQL's risky materialisation beats
  Orca's conservative index plan (~2X the other way);
* results are identical under both optimizers on every query.
"""

from benchmarks.conftest import run_tpch_suite, session_cache, write_report
from repro.bench import format_figure10, summarize


def test_fig10_tpch_execution_times(benchmark, tpch_db):
    result = benchmark.pedantic(run_tpch_suite, args=(tpch_db,),
                                rounds=1, iterations=1)
    session_cache()["tpch"] = result
    write_report("fig10_tpch.txt", format_figure10(result))
    headline = summarize(result)

    # Correctness: the evaluation is meaningless if plans disagree.
    assert not headline["mismatches"], headline["mismatches"]

    # Shape: Orca reduces the total (the paper reports 16%).
    assert result.total_orca < result.total_mysql, (
        f"Orca total {result.total_orca:.2f}s did not beat "
        f"MySQL total {result.total_mysql:.2f}s")

    # Orca wins decisively on the suite's longest queries.  (At this
    # memory-resident mini scale, most queries finish in tens of
    # milliseconds, where Orca's compile overhead dominates — the paper's
    # own Fig. 12 effect — so per-query 2X claims like Q13/Q21 are
    # asserted structurally in the A1 ablation instead.)
    longest = sorted(result.timings, key=lambda t: t.mysql_seconds,
                     reverse=True)[:3]
    assert any(t.speedup > 2.0 for t in longest), (
        [(t.number, t.speedup) for t in longest])
    # And it never loses catastrophically on a long query.
    for timing in longest:
        assert timing.ratio < 3.0, (timing.number, timing.ratio)
