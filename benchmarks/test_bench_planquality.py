"""BENCH — cardinality estimate accuracy: per-query root Q-error.

Produces ``benchmarks/results/BENCH_planquality.json`` (committed, so
the PR carries each optimizer's estimate accuracy) and a text summary.
Every TPC-H query runs under both the MySQL and the Orca optimizer with
``collect_plan_quality=True``; the executor's always-on actual-row
counters give each plan's root and worst per-node Q-error.

Assertions mirror the acceptance criteria: every executed statement —
under both optimizers — yields a quality snapshot (root q >= 1, max q
>= root q), and the two optimizers still agree on every result set.
No accuracy gate is asserted between the optimizers: the artifact is
the comparison.
"""

import json

from benchmarks.conftest import RESULTS_DIR, TIMEOUT, write_report
from repro.bench import (
    format_plan_quality_bench,
    run_suite,
    summarize_plan_quality,
)
from repro.workloads.tpch import TPCH_QUERIES


def test_bench_planquality(tpch_db):
    RESULTS_DIR.mkdir(exist_ok=True)
    result = run_suite(tpch_db, TPCH_QUERIES, "TPC-H",
                       timeout_seconds=TIMEOUT,
                       collect_plan_quality=True)
    payload = summarize_plan_quality(result)
    path = RESULTS_DIR / "BENCH_planquality.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    write_report("BENCH_planquality.txt",
                 format_plan_quality_bench(payload))

    recorded = json.loads(path.read_text())
    queries = recorded["queries"]
    assert len(queries) == len(TPCH_QUERIES)

    for number, row in queries.items():
        # Both optimizers produced a quality snapshot: a real Q-error
        # is always >= 1 (0.0 would mean the loop never ran).
        assert row["mysql_root_q"] >= 1.0, f"Q{number}: no mysql quality"
        assert row["orca_root_q"] >= 1.0, f"Q{number}: no orca quality"
        assert row["mysql_max_q"] >= row["mysql_root_q"] - 1e-9
        assert row["orca_max_q"] >= row["orca_root_q"] - 1e-9
        assert row["results_match"], f"Q{number}: results differ"

    # Every query lands in exactly one accuracy bucket.
    assert sorted(recorded["orca_better_or_equal_root"]
                  + recorded["mysql_better_root"]) == sorted(
        int(n) for n in queries)
