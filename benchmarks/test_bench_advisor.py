"""BENCH — the workload advisor on a drifting TPC-H workload.

Produces ``benchmarks/results/BENCH_advisor.json`` (committed, so the
PR carries the advisor evidence) and a text summary.  Three parts:

* **Drift scenario** — the full story from :mod:`repro.bench.drift`:
  statistics go stale under churn, worst-node Q-errors breach, a
  mid-workload optimizer reroute regresses one statement's p95, and
  the advisor recommends all three kinds (re-ANALYZE, index, plan
  regression).  Applying the actionable advice must drop the breached
  queries' worst-node Q-error back to the fresh-stats level and
  restore suite p95 latency to within ``MAX_P95_RATIO`` of the
  fresh-stats baseline.
* **Advice dump** — the ranked recommendation list itself, so the
  artifact shows *what* the advisor said, not just that it helped.
* **Tracking overhead** — the same query mix with workload tracking
  enabled versus disabled; the bookkeeping must stay within
  ``MAX_OVERHEAD_PERCENT`` of suite latency (the steady-state cost of
  always-on intelligence).
"""

import json

from benchmarks.conftest import RESULTS_DIR, SCALE, write_report
from repro.bench.drift import measure_tracking_overhead, run_drift_scenario

SEED = 20260808

#: Recovered suite p95 must land within this factor of the fresh-stats
#: baseline after the advisor's re-ANALYZE advice is applied.
MAX_P95_RATIO = 1.2

#: Hard ceiling for the workload-tracking bookkeeping (the committed
#: artifact records the actual figure, normally well under 1%).
MAX_OVERHEAD_PERCENT = 5.0


def _format_report(payload: dict) -> str:
    lines = ["BENCH: workload advisor on a drifting TPC-H mix",
             "=" * 48,
             f"scale {payload['scale']}  seed {payload['seed']}  "
             f"mix {payload['mix']}  "
             f"{payload['runs_per_query']} runs/query",
             "",
             "phase            suite p50      suite p95      median max-q"]
    for phase in ("baseline", "stale", "recovered"):
        row = payload[phase]
        lines.append(f"{phase:<14} {row['suite_median_seconds'] * 1000:>9.2f} ms "
                     f"{row['suite_p95_seconds'] * 1000:>10.2f} ms "
                     f"{row['suite_max_q_median']:>13.1f}")
    recovery = payload["recovery"]
    lines.append("")
    lines.append(f"recovered p95 vs baseline: "
                 f"{recovery['suite_p95_ratio_vs_baseline']:.2f}x "
                 f"(ceiling {MAX_P95_RATIO}x)")
    lines.append("breached queries (stale max-q > 16 and > 1.5x baseline):")
    for row in recovery["breached_queries"]:
        lines.append(f"  Q{row['query']:<3} q {row['stale_max_q']:>7.1f} "
                     f"-> {row['recovered_max_q']:>6.1f} "
                     f"(fresh-stats {row['baseline_max_q']:.1f})")
    staging = payload["regression_staging"]
    lines.append("")
    lines.append(f"staged reroute: {staging['fast_median_seconds'] * 1000:.2f} ms "
                 f"-> {staging['slow_median_seconds'] * 1000:.2f} ms median; "
                 f"{len(staging['flagged'])} plan regression(s) flagged")
    lines.append("")
    lines.append(f"advice ({len(payload['recommendations'])} items, "
                 f"kinds {payload['recommendation_kinds']}):")
    for rec in payload["recommendations"][:8]:
        lines.append(f"  [{rec['kind']:<15}] {rec['target']:<24} "
                     f"score {rec['score']:>9.2f}")
    overhead = payload["tracking_overhead"]
    lines.append("")
    lines.append(f"tracking overhead: {overhead['overhead_percent']:.2f}% "
                 f"(ceiling {MAX_OVERHEAD_PERCENT}%)")
    return "\n".join(lines)


def test_bench_advisor():
    payload = run_drift_scenario(scale=SCALE, seed=SEED,
                                 runs_per_query=5)
    payload["tracking_overhead"] = measure_tracking_overhead(
        scale=SCALE, seed=SEED, runs_per_query=5)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_advisor.json").write_text(
        json.dumps(payload, indent=2, default=str) + "\n")
    write_report("BENCH_advisor.txt", _format_report(payload))

    # All three recommendation kinds on one drifting workload.
    assert set(payload["recommendation_kinds"]) >= \
        {"reanalyze", "index", "plan_regression"}

    # The drift breached, and re-ANALYZE healed every breached query.
    breached = payload["recovery"]["breached_queries"]
    assert len(breached) >= 2
    for row in breached:
        assert row["recovered_max_q"] < row["stale_max_q"]

    # Latency is back in the fresh-stats neighbourhood.
    ratio = payload["recovery"]["suite_p95_ratio_vs_baseline"]
    assert ratio <= MAX_P95_RATIO, (
        f"recovered suite p95 is {ratio:.2f}x the fresh-stats baseline "
        f"(ceiling {MAX_P95_RATIO}x)")

    # The staged reroute was caught and purged.
    assert len(payload["regression_staging"]["flagged"]) == 1
    assert any(a["kind"] == "plan_regression" for a in payload["actions"])

    # Bookkeeping stays cheap.
    overhead = payload["tracking_overhead"]["overhead_percent"]
    assert overhead <= MAX_OVERHEAD_PERCENT, (
        f"workload tracking costs {overhead:.2f}% suite latency "
        f"(ceiling {MAX_OVERHEAD_PERCENT}%)")
