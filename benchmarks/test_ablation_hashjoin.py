"""A1 — ablation: cost-based hash-join selection.

MySQL's hash-join selection "is not cost-based" (Section 3.1): it takes a
hash join only when no index exists, and index NLJs otherwise.  Orca costs
both.  The TPC-H Q13 pattern (customer LEFT JOIN orders, an FK index
available on orders.o_custkey) is exactly where this differs: MySQL takes
the indexed NLJ, Orca the hash join — "the only plan difference is the
choice of the join method" (Section 6.1), worth ~2X in the paper.
"""

from benchmarks.conftest import write_report
from repro.bench.harness import results_match
from repro.workloads.tpch import tpch_query


def test_q13_join_method_difference(benchmark, tpch_db):
    sql = tpch_query(13)
    mysql_plan = tpch_db.explain(sql, optimizer="mysql")
    orca_plan = tpch_db.explain(sql, optimizer="orca")

    # MySQL's plan uses the index nested-loop left join.
    assert "Nested loop left join" in mysql_plan
    assert "orders_fk1" in mysql_plan or "Index lookup" in mysql_plan
    # Orca's plan hashes the orders side.
    assert "Left hash join" in orca_plan

    def run_both():
        return (tpch_db.run(sql, optimizer="mysql"),
                tpch_db.run(sql, optimizer="orca"))

    mysql_run, orca_run = benchmark.pedantic(run_both, rounds=1,
                                             iterations=1)
    assert results_match(mysql_run.rows, orca_run.rows)
    write_report(
        "ablation_hashjoin_q13.txt",
        f"Q13 (join-method ablation): MySQL NLJ plan executes in "
        f"{mysql_run.execute_seconds:.3f}s, Orca hash plan in "
        f"{orca_run.execute_seconds:.3f}s "
        f"({mysql_run.execute_seconds / max(orca_run.execute_seconds, 1e-9):.2f}X; "
        f"paper: 2X at SF20 — the gap compresses on a memory-resident "
        f"engine where a lookup costs microseconds, not a page read)")
    # Plan-quality comparison (execution only): the hash plan wins.
    assert orca_run.execute_seconds < mysql_run.execute_seconds * 1.15
