"""Tests for Orca preprocessing: OR factorization, derived subqueries,
CTE predicate pushdown (Sections 4.2.3 and 7)."""

import pytest

from repro.sql import ast
from repro.sql.blocks import EntryKind
from repro.sql.parser import parse_statement
from repro.sql.prepare import prepare
from repro.sql.resolver import Resolver
from repro.orca.preprocess import (
    convert_scalar_subqueries_to_derived,
    factor_one_or,
    factor_or_predicates,
    push_cte_predicates,
)


def prepared(catalog, sql):
    stmt = parse_statement(sql)
    block, context = Resolver(catalog).resolve(stmt)
    return prepare(block)


class TestOrFactorization:
    def test_q41_pattern_factors_common_equality(self, mini_catalog):
        # "(a = b AND x) OR (a = b AND y)" -> "(a = b) AND (x OR y)".
        block = prepared(mini_catalog, """
            SELECT 1 FROM orders, customer
            WHERE (o_custkey = c_custkey AND o_status = 'O')
               OR (o_custkey = c_custkey AND o_totalprice > 100)""")
        count = factor_or_predicates(block)
        assert count == 1
        assert len(block.where_conjuncts) == 2
        equality = block.where_conjuncts[0]
        assert equality.op is ast.BinOp.EQ
        disjunction = block.where_conjuncts[1]
        assert disjunction.op is ast.BinOp.OR

    def test_no_common_factor_unchanged(self, mini_catalog):
        block = prepared(mini_catalog, """
            SELECT 1 FROM orders
            WHERE o_status = 'O' OR o_totalprice > 100""")
        assert factor_or_predicates(block) == 0
        assert len(block.where_conjuncts) == 1

    def test_absorption_when_remainder_empty(self, mini_catalog):
        # (c AND x) OR c  ==  c
        block = prepared(mini_catalog, """
            SELECT 1 FROM orders
            WHERE (o_status = 'O' AND o_totalprice > 100)
               OR o_status = 'O'""")
        assert factor_or_predicates(block) == 1
        assert len(block.where_conjuncts) == 1
        assert block.where_conjuncts[0].op is ast.BinOp.EQ

    def test_three_disjuncts(self, mini_catalog):
        block = prepared(mini_catalog, """
            SELECT 1 FROM lineitem, part
            WHERE (p_partkey = l_partkey AND l_quantity < 10)
               OR (p_partkey = l_partkey AND l_quantity > 40)
               OR (p_partkey = l_partkey AND l_price > 400)""")
        assert factor_or_predicates(block) == 1
        assert block.where_conjuncts[0].op is ast.BinOp.EQ

    def test_non_or_conjunct_untouched(self, mini_catalog):
        block = prepared(mini_catalog,
                         "SELECT 1 FROM orders WHERE o_totalprice > 10")
        conjunct = block.where_conjuncts[0]
        assert factor_one_or(conjunct) is None


class TestScalarSubqueryToDerived:
    def test_q17_pattern_converted(self, mini_catalog):
        block = prepared(mini_catalog, """
            SELECT COUNT(*) FROM lineitem, part
            WHERE p_partkey = l_partkey
              AND l_quantity < (SELECT AVG(l_quantity) FROM lineitem
                                WHERE l_partkey = p_partkey)""")
        converted = convert_scalar_subqueries_to_derived(block)
        assert converted == 1
        derived = [e for e in block.entries
                   if e.kind is EntryKind.DERIVED]
        assert len(derived) == 1
        # The materialised column gets MySQL's Name_exp_1 (Listing 7).
        assert derived[0].columns[0].name == "Name_exp_1"
        # The comparison now references the derived column.
        last = block.where_conjuncts[-1]
        assert isinstance(last.right, ast.ColumnRef)
        assert last.right.entry_id == derived[0].entry_id

    def test_subquery_inside_case_not_converted(self, mini_catalog):
        # Section 4.2.3's override: the TPC-DS Q9 CASE subqueries stay
        # subqueries so only the needed bucket is evaluated.
        block = prepared(mini_catalog, """
            SELECT CASE WHEN (SELECT COUNT(*) FROM orders) > 5
                        THEN (SELECT AVG(o_totalprice) FROM orders)
                        ELSE 0 END
            FROM part WHERE p_partkey = 1""")
        assert convert_scalar_subqueries_to_derived(block) == 0

    def test_grouped_subquery_not_converted(self, mini_catalog):
        block = prepared(mini_catalog, """
            SELECT COUNT(*) FROM part
            WHERE p_size < (SELECT MAX(p_size) FROM part p2
                            GROUP BY p_brand LIMIT 1)""")
        assert convert_scalar_subqueries_to_derived(block) == 0

    def test_results_unchanged_by_conversion(self):
        from tests.conftest import build_mini_db

        db = build_mini_db(seed=21, orders=150)
        sql = """
            SELECT COUNT(*) FROM lineitem, part
            WHERE p_partkey = l_partkey
              AND l_quantity < (SELECT AVG(l_quantity) FROM lineitem
                                WHERE l_partkey = p_partkey)"""
        mysql_rows = db.execute(sql, optimizer="mysql")
        orca_rows = db.execute(sql, optimizer="orca")
        assert mysql_rows == orca_rows


class TestCtePushdown:
    def test_consumer_filters_ored_into_producer(self, mini_catalog):
        # The paper's example: predicates a = 5 and a = 6 on two
        # consumers are OR-ed and pushed (Section 7, lesson 3).
        block = prepared(mini_catalog, """
            WITH spend AS (SELECT o_custkey AS ck,
                                  SUM(o_totalprice) AS total
                           FROM orders GROUP BY o_custkey)
            SELECT s1.total, s2.total FROM spend s1, spend s2
            WHERE s1.ck = 5 AND s2.ck = 6 AND s1.total > s2.total""")
        pushed = push_cte_predicates(block)
        assert pushed == 1
        producer = block.cte_bindings[0].block
        pushed_conjunct = producer.where_conjuncts[-1]
        assert pushed_conjunct.op is ast.BinOp.OR

    def test_no_push_when_one_consumer_unfiltered(self, mini_catalog):
        block = prepared(mini_catalog, """
            WITH spend AS (SELECT o_custkey AS ck,
                                  SUM(o_totalprice) AS total
                           FROM orders GROUP BY o_custkey)
            SELECT s1.total FROM spend s1, spend s2
            WHERE s1.ck = 5 AND s1.total > s2.total""")
        assert push_cte_predicates(block) == 0

    def test_no_push_through_aggregate_column(self, mini_catalog):
        block = prepared(mini_catalog, """
            WITH spend AS (SELECT o_custkey AS ck,
                                  SUM(o_totalprice) AS total
                           FROM orders GROUP BY o_custkey)
            SELECT s1.total FROM spend s1
            WHERE s1.total > 100""")
        # total is an aggregate output, not a grouping column.
        assert push_cte_predicates(block) == 0

    def test_push_preserves_results(self):
        from tests.conftest import build_mini_db

        db = build_mini_db(seed=22, orders=150)
        sql = """
            WITH spend AS (SELECT o_custkey AS ck,
                                  SUM(o_totalprice) AS total
                           FROM orders GROUP BY o_custkey)
            SELECT s1.ck, s2.ck FROM spend s1, spend s2
            WHERE s1.ck = 5 AND s2.ck = 6 AND s1.total > s2.total"""
        assert db.execute(sql, optimizer="mysql") == \
            db.execute(sql, optimizer="orca")
