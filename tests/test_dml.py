"""Tests for DML: INSERT / DELETE / UPDATE and their routing behaviour."""

import datetime

import pytest

from repro import Database, DatabaseConfig
from repro.catalog import Column, Index, TableSchema
from repro.errors import ExecutionError, ReproError
from repro.mysql_types import MySQLType


@pytest.fixture()
def db():
    database = Database(DatabaseConfig())
    database.create_table(TableSchema("accounts", [
        Column.of("id", MySQLType.LONGLONG, nullable=False),
        Column.of("owner", MySQLType.VARCHAR, 30, nullable=False),
        Column.of("balance", MySQLType.DOUBLE, nullable=False),
        Column.of("opened", MySQLType.DATE),
    ], [Index("PRIMARY", ("id",), primary=True),
        Index("owner_idx", ("owner",))]))
    database.load("accounts", [
        (1, "ada", 100.0, datetime.date(1995, 1, 1)),
        (2, "bob", 250.0, datetime.date(1996, 2, 2)),
        (3, "cay", -10.0, None),
    ])
    database.analyze()
    return database


class TestInsert:
    def test_insert_full_row(self, db):
        result = db.run("INSERT INTO accounts VALUES "
                        "(4, 'dee', 75.5, DATE '1997-03-03')")
        assert result.rows == [(1,)]
        rows = db.execute("SELECT owner, balance FROM accounts "
                          "WHERE id = 4")
        assert rows == [("dee", 75.5)]

    def test_insert_with_column_list(self, db):
        db.run("INSERT INTO accounts (id, owner, balance) "
               "VALUES (5, 'eve', 0)")
        rows = db.execute("SELECT opened FROM accounts WHERE id = 5")
        assert rows == [(None,)]

    def test_insert_multiple_rows(self, db):
        result = db.run("INSERT INTO accounts (id, owner, balance) "
                        "VALUES (6, 'f', 1), (7, 'g', 2), (8, 'h', 3)")
        assert result.rows == [(3,)]
        assert db.execute("SELECT COUNT(*) FROM accounts") == [(6,)]

    def test_insert_coerces_types(self, db):
        db.run("INSERT INTO accounts (id, owner, balance) "
               "VALUES (9, 'i', 42)")
        rows = db.execute("SELECT balance FROM accounts WHERE id = 9")
        assert rows == [(42.0,)]
        assert isinstance(rows[0][0], float)

    def test_insert_null_into_not_null_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.run("INSERT INTO accounts (id, owner, balance) "
                   "VALUES (10, NULL, 1)")

    def test_inserted_rows_visible_to_indexes(self, db):
        db.run("INSERT INTO accounts (id, owner, balance) "
               "VALUES (11, 'ada', 7)")
        rows = db.execute(
            "SELECT COUNT(*) FROM accounts WHERE owner = 'ada'")
        assert rows == [(2,)]

    def test_arity_mismatch_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.run("INSERT INTO accounts (id, owner) VALUES (12,)"
                   .replace("(12,)", "(12, 'x', 1.0)"))


class TestDelete:
    def test_delete_with_where(self, db):
        result = db.run("DELETE FROM accounts WHERE balance < 0")
        assert result.rows == [(1,)]
        assert db.execute("SELECT COUNT(*) FROM accounts") == [(2,)]

    def test_delete_all(self, db):
        result = db.run("DELETE FROM accounts")
        assert result.rows == [(3,)]
        assert db.execute("SELECT COUNT(*) FROM accounts") == [(0,)]

    def test_delete_null_predicate_keeps_row(self, db):
        # WHERE opened < ... is UNKNOWN for the NULL date: not deleted.
        result = db.run("DELETE FROM accounts "
                        "WHERE opened < DATE '1999-01-01'")
        assert result.rows == [(2,)]
        assert db.execute("SELECT id FROM accounts") == [(3,)]

    def test_indexes_rebuilt_after_delete(self, db):
        db.run("DELETE FROM accounts WHERE owner = 'ada'")
        rows = db.execute("SELECT COUNT(*) FROM accounts "
                          "WHERE owner = 'ada'")
        assert rows == [(0,)]


class TestUpdate:
    def test_update_with_where(self, db):
        result = db.run(
            "UPDATE accounts SET balance = balance + 10 WHERE id = 1")
        assert result.rows == [(1,)]
        assert db.execute("SELECT balance FROM accounts WHERE id = 1") == \
            [(110.0,)]

    def test_update_all_rows(self, db):
        result = db.run("UPDATE accounts SET balance = 0")
        assert result.rows == [(3,)]
        rows = db.execute("SELECT DISTINCT balance FROM accounts")
        assert rows == [(0.0,)]

    def test_update_reads_old_row_values(self, db):
        # SET a = b, b = a must swap, not chain.
        db.create_table(TableSchema("pair", [
            Column.of("a", MySQLType.LONG),
            Column.of("b", MySQLType.LONG),
        ]))
        db.load("pair", [(1, 2)])
        db.run("UPDATE pair SET a = b, b = a")
        assert db.execute("SELECT a, b FROM pair") == [(2, 1)]

    def test_update_multiple_assignments(self, db):
        db.run("UPDATE accounts SET owner = 'zed', balance = 1 "
               "WHERE id = 2")
        assert db.execute(
            "SELECT owner, balance FROM accounts WHERE id = 2") == \
            [("zed", 1.0)]


class TestDmlRouting:
    def test_dml_never_routed_to_orca(self, db):
        # Section 4.1: "INSERT, UPDATE, and DELETE statements ... are not
        # sent" to Orca, regardless of thresholds.
        db.config.complex_query_threshold = 1
        result = db.run("INSERT INTO accounts (id, owner, balance) "
                        "VALUES (20, 'x', 1)")
        assert result.optimizer_used == "mysql"
        result = db.run("DELETE FROM accounts WHERE id = 20")
        assert result.optimizer_used == "mysql"

    def test_explain_of_dml_rejected(self, db):
        with pytest.raises(ReproError):
            db.explain("DELETE FROM accounts")

    def test_subquery_in_dml_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.run("DELETE FROM accounts WHERE balance < "
                   "(SELECT AVG(balance) FROM accounts)")


class TestCostBasedRouting:
    """The Section 9 future-work policy, implemented as an extension."""

    def _db(self, threshold):
        from tests.conftest import build_mini_db

        database = build_mini_db(seed=31, orders=200)
        database.config.routing = "cost_based"
        database.config.mysql_cost_threshold = threshold
        return database

    def test_cheap_query_stays_on_mysql(self):
        db = self._db(threshold=1e9)
        result = db.run("""
            SELECT COUNT(*) FROM customer, orders, lineitem
            WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey""")
        assert result.optimizer_used == "mysql"

    def test_expensive_query_detours_to_orca(self):
        db = self._db(threshold=0.0)
        result = db.run("""
            SELECT COUNT(*) FROM customer, orders, lineitem
            WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey""")
        assert result.optimizer_used == "orca"

    def test_cost_based_ignores_table_count(self):
        # Even a single-table query detours when its MySQL plan is
        # costed above the trigger — unlike the three-table heuristic.
        db = self._db(threshold=0.0)
        result = db.run("SELECT COUNT(*) FROM lineitem")
        assert result.optimizer_used == "orca"

    def test_results_identical_under_both_policies(self):
        sql = """
            SELECT o_custkey, COUNT(*) FROM customer, orders
            WHERE c_custkey = o_custkey GROUP BY o_custkey"""
        db = self._db(threshold=0.0)
        cost_rows = db.execute(sql)
        db.config.routing = "threshold"
        threshold_rows = db.execute(sql)
        assert sorted(cost_rows) == sorted(threshold_rows)