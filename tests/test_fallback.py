"""Failure injection: the Orca detour must always fall back cleanly.

Section 4.2.1: when conversion aborts, "the system resorts to the usual
MySQL query optimization".  These tests force failures at different
stages of the detour and verify queries still execute — on MySQL plans.
"""

import pytest

from repro import FallbackReason
from repro.bridge.router import OrcaRouter
from repro.errors import OrcaError, OrcaFallbackError

from tests.conftest import build_mini_db

SQL = """
SELECT COUNT(*) FROM customer, orders, lineitem
WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey
"""


@pytest.fixture()
def db():
    return build_mini_db(seed=71, orders=80)


class TestRouterFallback:
    def test_optimizer_crash_falls_back(self, db, monkeypatch):
        from repro.orca import optimizer as orca_optimizer

        def explode(self, logical, estimates):
            raise OrcaError("injected failure")

        monkeypatch.setattr(orca_optimizer.OrcaOptimizer,
                            "optimize_block", explode)
        result = db.run(SQL, optimizer="orca")
        assert result.optimizer_used == "mysql"
        assert result.rows  # the query still ran

    def test_converter_crash_falls_back(self, db, monkeypatch):
        from repro.bridge import parse_tree_converter as ptc

        def explode(self, block):
            raise OrcaFallbackError("injected conversion abort")

        monkeypatch.setattr(ptc.ParseTreeConverter, "convert_block",
                            explode)
        result = db.run(SQL, optimizer="orca")
        assert result.optimizer_used == "mysql"

    def test_plan_converter_abort_falls_back(self, db, monkeypatch):
        from repro.bridge import plan_converter as pc

        def explode(self, block_plans, top_block):
            raise OrcaFallbackError("injected block-structure change")

        monkeypatch.setattr(pc.OrcaPlanConverter, "convert", explode)
        result = db.run(SQL, optimizer="orca")
        assert result.optimizer_used == "mysql"

    def test_unexpected_exception_contained_by_default(self, db,
                                                       monkeypatch):
        # The containment guard catches genuine bugs too: the query
        # falls back to MySQL and the reason records the real error.
        from repro.orca import optimizer as orca_optimizer

        def explode(self, logical, estimates):
            raise ValueError("a real bug")

        monkeypatch.setattr(orca_optimizer.OrcaOptimizer,
                            "optimize_block", explode)
        result = db.run(SQL, optimizer="orca")
        assert result.optimizer_used == "mysql"
        assert result.fallback_reason is \
            FallbackReason.UNEXPECTED_EXCEPTION
        assert db.fallback_log.last_event.error_type == "ValueError"

    def test_unexpected_exception_surfaces_in_strict_mode(self, db,
                                                          monkeypatch):
        # With containment off (a debugging aid) genuine bugs surface
        # instead of silently degrading — the pre-containment behaviour.
        from repro.orca import optimizer as orca_optimizer

        def explode(self, logical, estimates):
            raise ValueError("a real bug")

        monkeypatch.setattr(orca_optimizer.OrcaOptimizer,
                            "optimize_block", explode)
        db.config.contain_unexpected_errors = False
        with pytest.raises(ValueError):
            db.run(SQL, optimizer="orca")

    def test_fallback_results_equal_mysql_results(self, db, monkeypatch):
        expected = db.execute(SQL, optimizer="mysql")
        from repro.orca import optimizer as orca_optimizer

        def explode(self, logical, estimates):
            raise OrcaError("injected")

        monkeypatch.setattr(orca_optimizer.OrcaOptimizer,
                            "optimize_block", explode)
        assert db.execute(SQL, optimizer="orca") == expected

    def test_router_returns_none_on_fallback(self, db, monkeypatch):
        from repro.orca import optimizer as orca_optimizer
        from repro.sql.parser import parse_statement
        from repro.sql.prepare import prepare
        from repro.sql.resolver import Resolver

        def explode(self, logical, estimates):
            raise OrcaFallbackError("injected")

        monkeypatch.setattr(orca_optimizer.OrcaOptimizer,
                            "optimize_block", explode)
        stmt = parse_statement(SQL)
        block, context = Resolver(db.catalog).resolve(stmt)
        prepare(block)
        router = OrcaRouter(db.catalog, db.config)
        assert router.optimize(stmt, block, context) is None


class TestAccessCounters:
    def test_mysql_plan_does_more_lookups_than_orca_on_joins(self, db):
        """Behavioural check of the core plan difference: MySQL's index
        NLJ plans probe per outer row; Orca's hash plans scan once."""
        sql = """
            SELECT COUNT(*) FROM orders, lineitem
            WHERE o_orderkey = l_orderkey"""
        db.storage.counters.reset()
        db.execute(sql, optimizer="mysql")
        mysql_lookups = db.storage.counters.index_lookups
        db.storage.counters.reset()
        db.execute(sql, optimizer="orca")
        orca_lookups = db.storage.counters.index_lookups
        assert mysql_lookups > orca_lookups

    def test_counters_track_scans(self, db):
        db.storage.counters.reset()
        db.execute("SELECT COUNT(*) FROM orders", optimizer="mysql")
        assert db.storage.counters.rows_scanned == \
            db.storage.heap("orders").row_count
