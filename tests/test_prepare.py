"""Tests for the MySQL prepare-phase rewrites."""

import datetime

import pytest

from repro.sql import ast
from repro.sql.blocks import EntryKind, NestKind
from repro.sql.parser import parse_statement
from repro.sql.prepare import prepare
from repro.sql.resolver import Resolver


def prepared(catalog, sql):
    stmt = parse_statement(sql)
    block, context = Resolver(catalog).resolve(stmt)
    return prepare(block)


class TestConstantFolding:
    def test_date_plus_interval_folds(self, mini_catalog):
        block = prepared(mini_catalog, """
            SELECT 1 FROM orders
            WHERE o_orderdate < DATE '1995-01-01' + INTERVAL '3' MONTH""")
        literal = block.where_conjuncts[0].right
        assert isinstance(literal, ast.Literal)
        assert literal.value == datetime.date(1995, 4, 1)

    def test_arithmetic_folds(self, mini_catalog):
        block = prepared(mini_catalog,
                         "SELECT 1 FROM orders WHERE o_totalprice > 2 * 50")
        assert block.where_conjuncts[0].right.value == 100

    def test_cast_of_literal_folds(self, mini_catalog):
        block = prepared(mini_catalog, """
            SELECT 1 FROM orders
            WHERE o_orderdate = CAST('1995-06-17' AS DATE)""")
        assert block.where_conjuncts[0].right.value == \
            datetime.date(1995, 6, 17)


class TestSemiJoinConversion:
    def test_exists_becomes_semijoin(self, mini_catalog):
        block = prepared(mini_catalog, """
            SELECT o_orderkey FROM orders
            WHERE EXISTS (SELECT * FROM lineitem
                          WHERE l_orderkey = o_orderkey)""")
        assert len(block.semijoin_nests) == 1
        assert block.semijoin_nests[0].kind is NestKind.SEMI
        assert len(block.entries) == 2
        # All conditions pooled in WHERE, as the paper's Listing 3 shows.
        assert len(block.where_conjuncts) == 1

    def test_in_subquery_becomes_semijoin_with_equality(self, mini_catalog):
        block = prepared(mini_catalog, """
            SELECT o_orderkey FROM orders
            WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem
                                 WHERE l_quantity > 10)""")
        assert block.semijoin_nests[0].kind is NestKind.SEMI
        # local filter + added equality conjunct
        assert len(block.where_conjuncts) == 2

    def test_not_exists_becomes_antijoin(self, mini_catalog):
        block = prepared(mini_catalog, """
            SELECT o_orderkey FROM orders
            WHERE NOT EXISTS (SELECT * FROM lineitem
                              WHERE l_orderkey = o_orderkey)""")
        assert block.semijoin_nests[0].kind is NestKind.ANTI

    def test_not_in_on_non_nullable_becomes_antijoin(self, mini_catalog):
        block = prepared(mini_catalog, """
            SELECT o_orderkey FROM orders
            WHERE o_orderkey NOT IN (SELECT l_orderkey FROM lineitem)""")
        assert block.semijoin_nests
        assert block.semijoin_nests[0].kind is NestKind.ANTI

    def test_not_in_on_nullable_stays_subquery(self, mini_catalog):
        # "depending on column nullability" (Section 4.1): o_comment is
        # nullable, so NOT IN keeps NULL-aware expression semantics.
        block = prepared(mini_catalog, """
            SELECT o_orderkey FROM orders
            WHERE o_comment NOT IN (SELECT c_comment FROM customer)""")
        assert not block.semijoin_nests

    def test_aggregated_subquery_not_converted(self, mini_catalog):
        block = prepared(mini_catalog, """
            SELECT o_orderkey FROM orders
            WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem
                                 GROUP BY l_orderkey
                                 HAVING SUM(l_quantity) > 100)""")
        assert not block.semijoin_nests

    def test_converted_entries_point_to_outer_block(self, mini_catalog):
        block = prepared(mini_catalog, """
            SELECT o_orderkey FROM orders
            WHERE EXISTS (SELECT * FROM lineitem
                          WHERE l_orderkey = o_orderkey)""")
        for entry in block.entries:
            assert entry.block is block


class TestDerivedMerge:
    def test_simple_derived_is_merged(self, mini_catalog):
        block = prepared(mini_catalog, """
            SELECT big.k FROM
            (SELECT o_orderkey AS k FROM orders
             WHERE o_totalprice > 100) AS big""")
        assert len(block.entries) == 1
        assert block.entries[0].kind is EntryKind.BASE
        assert len(block.where_conjuncts) == 1

    def test_aggregated_derived_not_merged(self, mini_catalog):
        block = prepared(mini_catalog, """
            SELECT t.total FROM
            (SELECT SUM(o_totalprice) AS total FROM orders) AS t""")
        assert block.entries[0].kind is EntryKind.DERIVED

    def test_merged_refs_rewritten(self, mini_catalog):
        block = prepared(mini_catalog, """
            SELECT d.k + 1 FROM
            (SELECT o_orderkey AS k FROM orders) AS d
            WHERE d.k > 5""")
        conjunct = block.where_conjuncts[0]
        assert isinstance(conjunct.left, ast.ColumnRef)
        assert conjunct.left.column == "o_orderkey"


class TestOuterJoinSimplification:
    def test_null_rejecting_where_converts_to_inner(self, mini_catalog):
        block = prepared(mini_catalog, """
            SELECT o_orderkey FROM orders
            LEFT JOIN lineitem ON o_orderkey = l_orderkey
            WHERE l_quantity > 5""")
        assert not block.entries[1].is_outer_joined
        # The ON condition moved into the pool.
        assert len(block.where_conjuncts) == 2

    def test_is_null_where_keeps_outer_join(self, mini_catalog):
        block = prepared(mini_catalog, """
            SELECT o_orderkey FROM orders
            LEFT JOIN lineitem ON o_orderkey = l_orderkey
            WHERE l_partkey IS NULL""")
        assert block.entries[1].is_outer_joined


class TestDerivedPushdown:
    def test_pushdown_below_group_by_on_group_column(self, mini_catalog):
        block = prepared(mini_catalog, """
            SELECT agg.ck, agg.total FROM
            (SELECT o_custkey AS ck, SUM(o_totalprice) AS total
             FROM orders GROUP BY o_custkey) AS agg
            WHERE agg.ck = 7""")
        entry = block.entries[0]
        assert entry.kind is EntryKind.DERIVED
        assert not block.where_conjuncts
        assert len(entry.sub_block.where_conjuncts) == 1

    def test_no_pushdown_on_aggregate_column(self, mini_catalog):
        block = prepared(mini_catalog, """
            SELECT agg.ck FROM
            (SELECT o_custkey AS ck, SUM(o_totalprice) AS total
             FROM orders GROUP BY o_custkey) AS agg
            WHERE agg.total > 100""")
        assert len(block.where_conjuncts) == 1
        assert not block.entries[0].sub_block.where_conjuncts
