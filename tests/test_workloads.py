"""Tests for the TPC-H and TPC-DS workload generators and query suites."""

import datetime

import pytest

from repro.workloads.tpch.datagen import BASE_ROWS as TPCH_ROWS, \
    generate_tpch
from repro.workloads.tpch.queries import TPCH_QUERIES
from repro.workloads.tpch.schema import TPCH_TABLES
from repro.workloads.tpcds.datagen import BASE_ROWS as TPCDS_ROWS, \
    generate_tpcds
from repro.workloads.tpcds.queries import TPCDS_QUERIES
from repro.workloads.tpcds.schema import TPCDS_TABLES


class TestTpchGenerator:
    def test_deterministic(self):
        a = generate_tpch(scale=0.2, seed=1)
        b = generate_tpch(scale=0.2, seed=1)
        assert a["lineitem"] == b["lineitem"]
        assert a["orders"] == b["orders"]

    def test_seed_changes_data(self):
        a = generate_tpch(scale=0.2, seed=1)
        b = generate_tpch(scale=0.2, seed=2)
        assert a["lineitem"] != b["lineitem"]

    def test_scale_controls_row_counts(self):
        small = generate_tpch(scale=0.2)
        large = generate_tpch(scale=1.0)
        assert len(large["orders"]) > 3 * len(small["orders"])
        # Fixed-size tables stay fixed.
        assert len(small["nation"]) == len(large["nation"]) == 25
        assert len(small["region"]) == len(large["region"]) == 5

    def test_row_widths_match_schema(self):
        data = generate_tpch(scale=0.2)
        for name, rows in data.items():
            width = len(TPCH_TABLES[name].columns)
            assert all(len(row) == width for row in rows), name

    def test_referential_integrity(self):
        data = generate_tpch(scale=0.3)
        order_keys = {row[0] for row in data["orders"]}
        part_keys = {row[0] for row in data["part"]}
        supp_keys = {row[0] for row in data["supplier"]}
        ps_pairs = {(row[0], row[1]) for row in data["partsupp"]}
        for line in data["lineitem"]:
            assert line[0] in order_keys
            assert (line[1], line[2]) in ps_pairs
            assert line[1] in part_keys
            assert line[2] in supp_keys

    def test_date_consistency(self):
        data = generate_tpch(scale=0.2)
        order_dates = {row[0]: row[4] for row in data["orders"]}
        for line in data["lineitem"]:
            assert line[10] > order_dates[line[0]]  # ship after order
            assert line[12] > line[10]              # receipt after ship

    def test_q16_complaint_suppliers_exist(self):
        data = generate_tpch(scale=1.0)
        complaints = [row for row in data["supplier"]
                      if "Customer" in row[6] and "Complaints" in row[6]]
        assert complaints, "Q16's NOT IN subquery would be vacuous"

    def test_order_totalprice_matches_lines(self):
        data = generate_tpch(scale=0.2)
        totals = {}
        for line in data["lineitem"]:
            amount = line[5] * (1 - line[6]) * (1 + line[7])
            totals[line[0]] = totals.get(line[0], 0.0) + amount
        for order in data["orders"]:
            assert order[3] == pytest.approx(totals.get(order[0], 0.0),
                                             abs=0.02)


class TestTpcdsGenerator:
    def test_deterministic(self):
        a = generate_tpcds(scale=0.2, seed=3)
        b = generate_tpcds(scale=0.2, seed=3)
        assert a["store_sales"] == b["store_sales"]

    def test_row_widths_match_schema(self):
        data = generate_tpcds(scale=0.2)
        for name, rows in data.items():
            width = len(TPCDS_TABLES[name].columns)
            assert all(len(row) == width for row in rows), name

    def test_date_dim_covers_two_years(self):
        data = generate_tpcds(scale=0.2)
        years = {row[2] for row in data["date_dim"]}
        assert years == {1998, 1999}
        assert len(data["date_dim"]) == 730

    def test_returns_reference_sales(self):
        data = generate_tpcds(scale=0.3)
        sale_keys = {(row[8], row[1]) for row in data["store_sales"]}
        for ret in data["store_returns"]:
            assert (ret[4], ret[1]) in sale_keys

    def test_q72_dimension_values_exist(self):
        # Listing 1 filters: hd_buy_potential='501-1000',
        # cd_marital_status='D'.
        data = generate_tpcds(scale=0.2)
        assert any(row[2] == "501-1000"
                   for row in data["household_demographics"])
        assert any(row[2] == "D"
                   for row in data["customer_demographics"])

    def test_q41_manufact_skew(self):
        # "only 999 distinct i_manufact values" for 28000 items — here
        # roughly a third as many manufacturers as items.
        data = generate_tpcds(scale=1.0)
        manufacturers = {row[8] for row in data["item"]}
        assert len(manufacturers) <= len(data["item"]) / 2

    def test_inventory_composite_key_unique(self):
        data = generate_tpcds(scale=0.2)
        keys = [(row[0], row[1], row[2]) for row in data["inventory"]]
        assert len(keys) == len(set(keys))


class TestQuerySuites:
    def test_tpch_has_22(self):
        assert sorted(TPCH_QUERIES) == list(range(1, 23))

    def test_tpcds_has_99(self):
        assert sorted(TPCDS_QUERIES) == list(range(1, 100))

    def test_all_queries_parse(self):
        from repro.sql.parser import parse_statement

        for suite in (TPCH_QUERIES, TPCDS_QUERIES):
            for number, sql in suite.items():
                parse_statement(sql)

    def test_tpcds_complexity_mix(self):
        """The suite needs short queries (Fig. 12) and wide ones
        (Table 1's EXHAUSTIVE2 outliers)."""
        from repro.sql.parser import parse_statement

        counts = [parse_statement(sql).table_reference_count()
                  for sql in TPCDS_QUERIES.values()]
        assert min(counts) <= 2, "no short queries in the suite"
        assert max(counts) >= 14, "no wide joins in the suite"
        assert sum(1 for c in counts if c <= 3) >= 20

    def test_flagships_are_handwritten(self):
        # The queries the paper's evaluation names must keep their
        # structure; spot-check identifying features.
        assert "customer_total_return" in TPCDS_QUERIES[1]
        assert "bucket1" in TPCDS_QUERIES[9]
        assert "cross_items" in TPCDS_QUERIES[14]
        assert "cs_ui" in TPCDS_QUERIES[64]
        assert "inv_quantity_on_hand < cs_quantity" in TPCDS_QUERIES[72]
        assert TPCH_QUERIES[17].count("AVG(l_quantity)") == 1

    def test_no_intersect_or_except(self):
        # The paper rewrote those queries; the suite must not rely on
        # operators MySQL rejects.
        for sql in TPCDS_QUERIES.values():
            assert "INTERSECT" not in sql.upper()
            assert "EXCEPT" not in sql.upper()
