"""Tests for EXPLAIN output formatting (Listing 7's features)."""

import pytest

from tests.conftest import build_mini_db


@pytest.fixture(scope="module")
def db():
    return build_mini_db(seed=17, orders=150)


Q17_STYLE = """
SELECT SUM(l_price) FROM lineitem, part
WHERE p_partkey = l_partkey AND p_brand = 'Brand#1'
  AND l_quantity < (SELECT AVG(l_quantity) FROM lineitem
                    WHERE l_partkey = p_partkey)
LIMIT 1
"""


class TestExplainShape:
    def test_orca_header_line(self, db):
        # Listing 7: "the first line indicates that the plan was
        # Orca-assisted".
        text = db.explain(Q17_STYLE, optimizer="orca")
        assert text.splitlines()[0] == "EXPLAIN (ORCA)"

    def test_limit_line(self, db):
        text = db.explain(Q17_STYLE, optimizer="orca")
        assert "Limit: 1 row(s)" in text

    def test_costs_and_rows_on_every_operator(self, db):
        text = db.explain(Q17_STYLE, optimizer="mysql")
        operator_lines = [line for line in text.splitlines()
                          if "-> " in line and "Materialize" not in line]
        assert operator_lines
        for line in operator_lines:
            assert "cost=" in line and "rows=" in line

    def test_correlated_materialize_invalidation_annotation(self, db):
        # Listing 7's "Materialize (invalidate on row from part)".
        text = db.explain(Q17_STYLE, optimizer="orca")
        assert "invalidate on row from" in text

    def test_derived_table_named_like_mysql(self, db):
        # MySQL names the materialised temporary 'derived_<block>_<sub>'
        # and its column Name_exp_1 (both visible in Listing 7).
        text = db.explain(Q17_STYLE, optimizer="orca")
        assert "derived_" in text
        assert "Name_exp_1" in text

    def test_filters_printed(self, db):
        text = db.explain(
            "SELECT o_orderkey FROM orders WHERE o_totalprice > 100",
            optimizer="mysql")
        assert "Filter:" in text
        assert "o_totalprice" in text

    def test_join_operators_named(self, db):
        text = db.explain("""
            SELECT COUNT(*) FROM customer, orders, lineitem
            WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey""",
            optimizer="orca")
        assert "join" in text.lower()

    def test_index_lookup_shows_key(self, db):
        text = db.explain("""
            SELECT c_name, o_totalprice FROM customer, orders
            WHERE c_custkey = o_custkey AND c_custkey = 3""",
            optimizer="mysql")
        assert "Index lookup" in text or "Index range scan" in text

    def test_aggregate_line_shows_strategy(self, db):
        text = db.explain(
            "SELECT o_status, COUNT(*) FROM orders GROUP BY o_status",
            optimizer="mysql")
        assert "aggregate" in text.lower()
        assert "streaming" in text or "hash" in text
