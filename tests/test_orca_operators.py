"""Tests for Orca operator structures and plan rendering."""

import pytest

from repro.mysql_optimizer.skeleton import AccessPlan
from repro.executor.plan import AccessMethod
from repro.orca.operators import (
    JoinVariant,
    LogicalGet,
    PhysicalGet,
    PhysicalHashJoin,
    PhysicalNLJoin,
    PhysicalSort,
    TableDescriptor,
    render_physical,
)
from repro.sql.blocks import EntryKind, StatementContext


def make_get(alias, context, block):
    entry = context.new_entry(EntryKind.BASE, alias, alias, block)
    descriptor = TableDescriptor(mdid=1_000_000, name=alias, alias=alias,
                                 entry=entry)
    get = PhysicalGet(descriptor,
                      AccessPlan(method=AccessMethod.TABLE_SCAN), [])
    get.cost, get.rows = 10.0, 100.0
    return get


@pytest.fixture()
def context():
    return StatementContext()


@pytest.fixture()
def block(context):
    return context.new_block()


class TestPhysicalTree:
    def test_leaves_enumeration(self, context, block):
        a = make_get("a", context, block)
        b = make_get("b", context, block)
        c = make_get("c", context, block)
        join = PhysicalHashJoin(PhysicalNLJoin(a, b, JoinVariant.INNER, []),
                                c, JoinVariant.INNER, [])
        assert [leaf.descriptor.alias for leaf in join.leaves()] == \
            ["a", "b", "c"]

    def test_names_reflect_variant(self, context, block):
        a = make_get("a", context, block)
        b = make_get("b", context, block)
        assert PhysicalHashJoin(a, b, JoinVariant.SEMI, []).name() == \
            "HashJoin(semi)"
        assert PhysicalNLJoin(a, b, JoinVariant.LEFT, [],
                              index_inner=True).name() == \
            "IndexNLJoin(left)"

    def test_describe_includes_memo_group(self, context, block):
        get = make_get("a", context, block)
        get.group_id = 46  # Fig. 6's first group id
        assert get.describe().endswith("[46]")

    def test_render_physical_indents(self, context, block):
        a = make_get("a", context, block)
        b = make_get("b", context, block)
        join = PhysicalHashJoin(a, b, JoinVariant.INNER, [])
        join.cost, join.rows = 50.0, 500.0
        sort = PhysicalSort(join, [])
        sort.cost, sort.rows = 60.0, 500.0
        text = render_physical(sort)
        lines = text.splitlines()
        assert lines[0].startswith("PhysicalSort")
        assert lines[1].startswith("  HashJoin(inner)")
        assert lines[2].startswith("    table_scan:a")
        assert "cost=" in lines[0]

    def test_descriptor_keeps_table_list_pointer(self, context, block):
        get = make_get("a", context, block)
        assert get.descriptor.entry.block is block
        assert get.descriptor.entry.alias == "a"

    def test_logical_get_conjunct_bucket(self, context, block):
        entry = context.new_entry(EntryKind.BASE, "t", "t", block)
        descriptor = TableDescriptor(1, "t", "t", entry)
        unit = LogicalGet(descriptor)
        assert unit.conjuncts == []
