"""Observability: span tracing, metrics registry, and their wiring.

Covers the tracer core (LIFO closing, exception resilience, zero-cost
disabled path), the streaming histograms, and the end-to-end pipeline:
``run(sql, trace=True)`` must return a span tree covering every stage of
the Orca detour, fallbacks must leave both the aborted Orca spans and
the MySQL re-optimization span in the trace, and ``metrics_report()``
must surface detour rate, fallback reasons, and the mdcache hit ratio.
"""

import json

import pytest

from repro.bench.harness import run_suite
from repro.bench.report import format_stage_breakdown
from repro.observability import (MetricsRegistry, NOOP_TRACER, Span,
                                 StreamingHistogram, Tracer, find_spans,
                                 stage_durations)
from repro.resilience import FaultInjector

from tests.conftest import build_mini_db

JOIN_SQL = ("SELECT c_name, COUNT(*) FROM customer, orders, lineitem "
            "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
            "GROUP BY c_name")


@pytest.fixture(scope="module")
def loaded_db():
    return build_mini_db(orders=60)


class TestTracerCore:

    def test_nested_spans_close_lifo(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    assert tracer.current is inner
                assert inner.closed and not middle.closed
                assert tracer.current is middle
            assert middle.closed and not outer.closed
        assert outer.closed
        assert tracer.current is None
        # Tree shape: outer -> middle -> inner.
        assert tracer.roots == [outer]
        assert outer.children == [middle]
        assert middle.children == [inner]
        # Children close before parents, so durations nest.
        assert 0 <= inner.duration <= middle.duration <= outer.duration

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("doomed"):
                    raise ValueError("boom")
        outer = tracer.last_root
        assert outer.closed
        doomed = outer.children[0]
        assert doomed.closed
        assert doomed.attributes["error"] == "ValueError"
        assert doomed.attributes["error_message"] == "boom"
        # The exception unwound through the parent too, so it carries
        # the same marker — every span on the failure path is tagged.
        assert outer.attributes["error"] == "ValueError"

    def test_leaked_descendants_closed_with_parent(self):
        # A generator abandoned mid-span never runs the inner __exit__;
        # closing the parent must still end the leaked child.
        tracer = Tracer()
        parent = tracer.span("parent")
        parent.__enter__()
        child = tracer.span("leaked")
        child.__enter__()
        parent.__exit__(None, None, None)
        assert child.closed and parent.closed
        assert tracer.current is None

    def test_attributes_and_set(self):
        tracer = Tracer()
        with tracer.span("route", route="orca", tables=3) as span:
            span.set(policy="auto")
        assert span.attributes == {"route": "orca", "tables": 3,
                                   "policy": "auto"}

    def test_name_attribute_does_not_collide(self):
        # Spans carry attributes named "name" (metadata lookups do);
        # the positional-only span name must not clash with them.
        tracer = Tracer()
        with tracer.span("metadata_lookup", name="orders") as span:
            pass
        assert span.name == "metadata_lookup"
        assert span.attributes["name"] == "orders"
        with NOOP_TRACER.span("metadata_lookup", name="orders"):
            pass

    def test_flat_export_reconstructs_tree(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        dicts = tracer.last_root.to_dicts()
        assert [d["name"] for d in dicts] == ["a", "b", "c"]
        assert [d["depth"] for d in dicts] == [0, 1, 1]
        assert [d["parent"] for d in dicts] == [None, 0, 0]
        json.dumps(dicts)  # JSON-ready

    def test_find_spans_and_stage_durations(self):
        tracer = Tracer()
        with tracer.span("statement"):
            with tracer.span("memo_search"):
                pass
            with tracer.span("memo_search"):
                pass
        root = tracer.last_root
        assert len(find_spans(root, "memo_search")) == 2
        stages = stage_durations(root)
        both = find_spans(root, "memo_search")
        assert stages["memo_search"] == pytest.approx(
            both[0].duration + both[1].duration)


class TestNullTracer:

    def test_disabled_tracer_records_nothing(self):
        span = NOOP_TRACER.span("anything", key="value")
        with span:
            pass
        assert NOOP_TRACER.roots == []
        assert NOOP_TRACER.export() == []
        assert NOOP_TRACER.current is None
        assert NOOP_TRACER.last_root is None
        assert not NOOP_TRACER.enabled

    def test_null_span_is_shared_and_inert(self):
        a = NOOP_TRACER.span("a")
        b = NOOP_TRACER.span("b", attr=1)
        assert a is b
        assert a.set(x=1) is a
        assert a.duration == 0.0

    def test_untraced_run_has_no_trace(self, loaded_db):
        result = loaded_db.run(JOIN_SQL)
        assert result.trace is None
        assert result.trace_export() == []
        assert result.stage_seconds() == {}
        assert loaded_db.tracer is NOOP_TRACER


class TestStreamingHistogram:

    def test_exact_quantiles_small_sample(self):
        histogram = StreamingHistogram()
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.count == 100
        assert histogram.min == 1.0 and histogram.max == 100.0
        assert histogram.quantile(0.50) == pytest.approx(50.5)
        assert histogram.quantile(0.95) == pytest.approx(95.05)
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(1.0) == 100.0

    def test_reservoir_keeps_exact_aggregates(self):
        histogram = StreamingHistogram()
        n = StreamingHistogram.RESERVOIR_SIZE * 4
        for value in range(n):
            histogram.observe(float(value))
        assert histogram.count == n
        assert histogram.total == pytest.approx(n * (n - 1) / 2)
        assert len(histogram._samples) == StreamingHistogram.RESERVOIR_SIZE
        # Sampled quantiles stay in range and roughly central.
        p50 = histogram.quantile(0.5)
        assert 0 <= p50 <= n
        summary = histogram.summary()
        assert set(summary) == {"count", "sum", "mean", "min", "max",
                                "p50", "p95", "p99"}

    def test_seeded_reservoir_is_reproducible(self):
        a, b = StreamingHistogram(), StreamingHistogram()
        for value in range(5000):
            a.observe(value * 0.1)
            b.observe(value * 0.1)
        assert a.summary() == b.summary()


class TestMetricsRegistry:

    def test_counters_gauges_histograms(self):
        metrics = MetricsRegistry()
        metrics.inc("detour.entered")
        metrics.inc("detour.entered")
        metrics.inc("fallback.exceeds_resources", 3)
        metrics.set_gauge("memo.groups", 17)
        metrics.observe("orca.memo_groups", 6)
        assert metrics.count("detour.entered") == 2
        assert metrics.count("never.touched") == 0
        assert metrics.gauge("memo.groups") == 17
        assert metrics.gauge("never.touched") == 0.0
        assert metrics.histogram("orca.memo_groups").count == 1
        assert metrics.histogram("never.touched") is None
        assert metrics.ratio("fallback.exceeds_resources",
                             "detour.entered") == 1.5
        assert metrics.ratio("detour.entered", "never.touched") == 0.0
        assert metrics.counters_with_prefix("fallback.") == {
            "fallback.exceeds_resources": 3}
        exported = metrics.to_dict()
        assert exported["counters"]["detour.entered"] == 2
        assert "orca.memo_groups" in exported["histograms"]
        text = metrics.report()
        assert "detour.entered" in text and "memo.groups" in text
        metrics.reset()
        assert metrics.count("detour.entered") == 0
        assert metrics.report() == "(no metrics recorded)"


class TestPipelineTracing:

    def test_traced_join_covers_every_stage(self, loaded_db):
        # Bypass the plan cache: this test wants the full pipeline's spans,
        # not the shortened hit path.
        result = loaded_db.run(JOIN_SQL, trace=True, use_plan_cache=False)
        assert result.optimizer_used == "orca"
        root = result.trace
        assert root is not None and root.name == "statement"
        names = {span.name for span in root.walk()}
        for required in ("parse", "prepare", "route", "orca_detour",
                         "preprocess", "metadata_lookup",
                         "parse_tree_convert", "memo_search",
                         "plan_convert", "refine", "execute"):
            assert required in names, f"missing span {required}"
        for span in root.walk():
            assert span.closed
            assert span.duration >= 0.0
            assert span.end >= span.start
        # Children nest within their parents' window.
        for span in root.walk():
            for child in span.children:
                assert child.start >= span.start
                assert child.end <= span.end
        # The detour recorded its memo statistics on the search span.
        search = find_spans(root, "memo_search")[0]
        assert search.attributes["memo_groups"] > 0
        assert search.attributes["cost_evaluations"] > 0

    def test_trace_is_per_statement_and_restores_tracer(self, loaded_db):
        previous = loaded_db.tracer
        result = loaded_db.run(JOIN_SQL, trace=True)
        assert loaded_db.tracer is previous  # restored afterwards
        assert result.trace is not None
        untraced = loaded_db.run(JOIN_SQL)
        assert untraced.trace is None

    def test_trace_export_is_json(self, loaded_db):
        result = loaded_db.run(JOIN_SQL, trace=True, use_plan_cache=False)
        flat = result.trace_export()
        payload = json.dumps(flat)
        parsed = json.loads(payload)
        assert parsed[0]["name"] == "statement"
        assert all(entry["duration"] >= 0 for entry in parsed)
        stages = result.stage_seconds()
        assert stages["memo_search"] > 0

    def test_fallback_trace_keeps_orca_and_mysql_spans(self):
        db = build_mini_db(orders=40)
        db.config.fault_injector = FaultInjector().arm("optimizer",
                                                       "typed")
        result = db.run(JOIN_SQL, trace=True)
        assert result.optimizer_used == "mysql"
        assert result.fallback_reason is not None
        root = result.trace
        detour = find_spans(root, "orca_detour")[0]
        assert detour.attributes["outcome"] == "fallback"
        assert detour.attributes["fallback_reason"] == \
            result.fallback_reason.value
        # The aborted Orca span is still in the tree, closed, and marked
        # with the error that unwound through it ...
        search = find_spans(root, "memo_search")[0]
        assert search.closed
        assert "error" in search.attributes
        # ... and the MySQL re-optimization ran inside the same trace.
        assert find_spans(root, "mysql_optimize")
        assert find_spans(root, "execute")

    def test_metrics_report_headlines(self):
        db = build_mini_db(orders=40)
        db.run(JOIN_SQL, use_plan_cache=False)
        db.config.fault_injector = FaultInjector().arm("optimizer",
                                                       "typed", times=1)
        db.run(JOIN_SQL, use_plan_cache=False)
        report = db.metrics_report()
        assert "detour rate:" in report
        assert "(2/2 SELECTs entered the Orca detour)" in report
        assert "fallbacks by reason:" in report
        assert "typed_abort" in report
        assert "mdcache hit ratio:" in report
        assert db.metrics.count("detour.entered") == 2
        assert db.metrics.count("detour.succeeded") == 1
        assert db.metrics.count("detour.fallbacks") == 1

    def test_mdcache_stats(self, loaded_db):
        loaded_db.run(JOIN_SQL, optimizer="orca", use_plan_cache=False)
        router = loaded_db.last_router
        stats = router.last_accessor.stats()
        assert stats["hits"] > 0 and stats["misses"] > 0
        assert stats["hit_ratio"] == pytest.approx(
            stats["hits"] / (stats["hits"] + stats["misses"]))
        assert sum(stats["misses_by_kind"].values()) == stats["misses"]

    def test_explain_analyze_stage_footer(self, loaded_db):
        text = loaded_db.explain(JOIN_SQL, analyze=True)
        assert "Stage breakdown" in text
        assert "optimizer: orca" in text
        assert "optimize share" in text
        assert "memo_search:" in text
        assert "memo:" in text and "alternatives costed" in text


class TestBenchStageBreakdown:

    def test_suite_collects_stage_splits(self, loaded_db):
        queries = {1: JOIN_SQL}
        result = run_suite(loaded_db, queries, "obs",
                           timeout_seconds=60, collect_stages=True)
        timing = result.timings[0]
        assert timing.orca_optimize_seconds > 0
        assert timing.orca_execute_seconds > 0
        assert timing.mysql_optimize_seconds > 0
        assert timing.orca_optimize_seconds + timing.orca_execute_seconds \
            <= timing.orca_seconds
        assert timing.orca_stages["memo_search"] > 0
        table = format_stage_breakdown(result)
        assert "optimizer stage breakdown" in table
        assert "Q    1" in table
        assert "top-3 slowest optimizer stages" in table
        assert "memo_search" in table

    def test_breakdown_without_stage_data(self, loaded_db):
        queries = {1: JOIN_SQL}
        result = run_suite(loaded_db, queries, "obs", timeout_seconds=60)
        assert result.timings[0].orca_stages == {}
        table = format_stage_breakdown(result)
        assert "no stage data recorded" in table


class TestUnclosedSpanExport:
    """Satellite: exporting a tree mid-flight must mark open spans
    ``closed: false`` with a null duration — a fabricated 0.0 would
    read as "instant" for exactly the span that was open longest."""

    def test_unclosed_spans_export_null_duration(self):
        tracer = Tracer()
        outer = tracer.span("outer").__enter__()
        inner = tracer.span("inner").__enter__()
        try:
            nested = outer.to_dict()
            assert nested["closed"] is False
            assert nested["duration"] is None
            child = nested["children"][0]
            assert child["name"] == "inner"
            assert child["closed"] is False and child["duration"] is None
            flat = outer.to_dicts()
            assert all(d["closed"] is False and d["duration"] is None
                       for d in flat)
        finally:
            inner.__exit__(None, None, None)
            outer.__exit__(None, None, None)
        # Once closed, the same exports carry real durations again.
        closed = outer.to_dict()
        assert closed["closed"] is True
        assert closed["duration"] == pytest.approx(outer.duration)

    def test_mixed_tree_only_open_spans_marked(self):
        tracer = Tracer()
        outer = tracer.span("outer").__enter__()
        with tracer.span("done"):
            pass
        flat = {d["name"]: d for d in outer.to_dicts()}
        assert flat["done"]["closed"] is True
        assert flat["done"]["duration"] is not None
        assert flat["outer"]["closed"] is False
        outer.__exit__(None, None, None)

    def test_find_spans_on_exported_dict_and_list(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        root = tracer.last_root
        # Live tree: Span objects out.
        live = find_spans(root, "inner")
        assert len(live) == 2
        assert all(isinstance(span, Span) for span in live)
        # Nested dict export: dicts out, same hits.
        nested = find_spans(root.to_dict(), "inner")
        assert [d["name"] for d in nested] == ["inner", "inner"]
        assert all(isinstance(d, dict) for d in nested)
        # Flat list export (Tracer.export shape): same answer again.
        flat = find_spans(root.to_dicts(), "inner")
        assert len(flat) == 2
        assert find_spans(root.to_dicts(), "outer")[0]["depth"] == 0
        assert find_spans(root.to_dict(), "missing") == []


class TestMetricsReportEmptySafety:
    """Satellite: every ratio line must render (as 0.0%) when its
    denominator is zero — fresh registry or right after reset()."""

    def test_report_on_fresh_database(self):
        db = build_mini_db(orders=10)
        report = db.metrics_report()
        assert "detour rate:       0.0%" in report
        assert "(0/0 SELECTs entered the Orca detour)" in report
        assert "mdcache hit ratio: 0.0%" in report

    def test_report_after_reset(self):
        db = build_mini_db(orders=40)
        db.run(JOIN_SQL, use_plan_cache=False)
        db.metrics.reset()
        report = db.metrics_report()
        assert "detour rate:       0.0%" in report
        assert "mdcache hit ratio: 0.0%" in report
        assert "fallbacks by reason: (none)" in report
