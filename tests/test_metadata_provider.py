"""Tests for the MySQL metadata provider and Orca's MD cache (Section 5)."""

import pytest

from repro.bridge import oid_layout
from repro.bridge.metadata_provider import MySQLMetadataProvider
from repro.errors import InvalidOidError, MetadataProviderError
from repro.mysql_types import TypeCategory
from repro.orca.mdcache import MDAccessor
from repro.sql import ast

from tests.conftest import build_mini_db


@pytest.fixture(scope="module")
def db():
    return build_mini_db(seed=11, orders=100)


@pytest.fixture()
def provider(db):
    return MySQLMetadataProvider(db.catalog)


class TestTableOids:
    def test_qualified_name_lookup(self, provider):
        # The Section 5.7 interaction: schema-qualified name -> OID.
        oid = provider.get_table_oid("tpch.orders")
        assert oid == provider.get_table_oid("orders")

    def test_oids_are_stable(self, provider):
        assert provider.get_table_oid("orders") == \
            provider.get_table_oid("orders")

    def test_distinct_tables_distinct_oids(self, provider):
        assert provider.get_table_oid("orders") != \
            provider.get_table_oid("lineitem")

    def test_unknown_table_raises(self, provider):
        with pytest.raises(MetadataProviderError):
            provider.get_table_oid("missing")

    def test_column_oid_depends_on_position(self, provider):
        first = provider.get_column_oid("orders", "o_orderkey")
        second = provider.get_column_oid("orders", "o_custkey")
        assert second == first + 1

    def test_synthetic_oids_far_from_real(self, provider):
        real = provider.get_table_oid("orders")
        synthetic = provider.get_synthetic_oid("derived_1_2")
        assert synthetic > real + 10 * oid_layout.RELATION_STRIDE


class TestDxlAnswers:
    def test_relation_dxl_served(self, provider):
        oid = provider.get_table_oid("orders")
        text = provider.get_relation_dxl(oid)
        assert "orders" in text and "o_orderkey" in text

    def test_statistics_dxl_includes_histograms(self, provider):
        oid = provider.get_table_oid("orders")
        text = provider.get_statistics_dxl(oid)
        assert "Histogram" in text

    def test_unique_column_histogram_included(self, provider, db):
        # Section 5.5: the UNIQUE-column histogram restriction was lifted.
        oid = provider.get_table_oid("orders")
        from repro.bridge.dxl import statistics_from_dxl

        stats = statistics_from_dxl(provider.get_statistics_dxl(oid))
        assert stats.columns["o_orderkey"].unique
        assert stats.columns["o_orderkey"].histogram is not None

    def test_bad_relation_oid_rejected(self, provider):
        with pytest.raises(InvalidOidError):
            provider.get_relation_dxl(oid_layout.relation_oid(999))

    def test_type_dxl(self, provider):
        from repro.mysql_types import MySQLType

        text = provider.get_type_dxl(oid_layout.type_oid(MySQLType.DATE))
        assert "DATE" in text


class TestExpressionOids:
    def test_expression_oid_for_comparison(self, provider, db):
        from repro.sql.parser import parse_statement
        from repro.sql.resolver import Resolver

        stmt = parse_statement(
            "SELECT 1 FROM orders WHERE o_priority = 'x'")
        block, __ = Resolver(db.catalog).resolve(stmt)
        conjunct = block.where_conjuncts[0]
        oid = provider.get_expression_oid(conjunct)
        assert oid_layout.decode_comparison(oid) == (
            TypeCategory.STR, TypeCategory.STR, ast.BinOp.EQ)

    def test_count_star_uses_star_category(self, provider):
        call = ast.AggCall(ast.AggFunc.COUNT, star=True)
        oid = provider.get_expression_oid(call)
        assert oid_layout.decode_aggregate(oid) == (
            TypeCategory.STAR, ast.AggFunc.COUNT)

    def test_count_expr_uses_any_category(self, provider):
        call = ast.AggCall(ast.AggFunc.COUNT, ast.Literal(1))
        oid = provider.get_expression_oid(call)
        assert oid_layout.decode_aggregate(oid) == (
            TypeCategory.ANY, ast.AggFunc.COUNT)

    def test_function_pointer_is_stub(self, provider):
        # Section 5: the MySQL provider returns stubs, never callbacks.
        oid = provider.get_function_oid("SUBSTRING")
        assert provider.get_function_pointer(oid) is None


class TestMDAccessorCaching:
    def test_statistics_cached(self, db):
        provider = MySQLMetadataProvider(db.catalog)
        accessor = MDAccessor(provider)
        accessor.statistics("orders")
        first = provider.request_counts.get("statistics_dxl", 0)
        for __ in range(10):
            accessor.statistics("orders")
        # "if the required information pre-exists there, the metadata
        # provider is not queried again" (Section 5.7).
        assert provider.request_counts["statistics_dxl"] == first
        assert accessor.cache_hits >= 10

    def test_relation_cached(self, db):
        provider = MySQLMetadataProvider(db.catalog)
        accessor = MDAccessor(provider)
        accessor.relation("lineitem")
        accessor.relation("lineitem")
        assert provider.request_counts["relation_dxl"] == 1

    def test_accessor_serves_estimator_protocol(self, db):
        provider = MySQLMetadataProvider(db.catalog)
        accessor = MDAccessor(provider)
        stats = accessor.statistics("orders")
        assert stats.row_count == db.catalog.statistics("orders").row_count

    def test_dxl_roundtrip_preserves_estimates(self, db):
        provider = MySQLMetadataProvider(db.catalog)
        accessor = MDAccessor(provider)
        direct = db.catalog.statistics("orders")
        via_dxl = accessor.statistics("orders")
        for name in ("o_custkey", "o_totalprice"):
            assert via_dxl.columns[name].distinct_count == \
                direct.columns[name].distinct_count
