"""Plan-quality feedback: Q-error, the misestimation ledger, and the
estimate-to-actual loop the Database facade closes around them.

Covers the Q-error math (including the zero-row smoothing and the
per-loop normalisation for nested-loop inners), per-statement quality
snapshots from both engines, the ledger's breach-streak feedback that
invalidates cached plans, the stale-statistics scenario (load after
ANALYZE) that drives it, and the export surfaces: Prometheus text
format and the JSONL slow-query log.
"""

import json
import re

import pytest

from repro import Database, DatabaseConfig
from repro.catalog import Column, Index, TableSchema
from repro.errors import ReproError
from repro.mysql_types import MySQLType
from repro.plan_cache import statement_cache_key
from repro.plan_quality import (
    MisestimationLedger,
    NodeQuality,
    StatementQuality,
    format_plan_quality_report,
    per_loop_q,
    q_error,
)
from tests.conftest import build_mini_db
from tests.test_executor_equivalence import CORPUS


@pytest.fixture(scope="module")
def db():
    return build_mini_db(seed=37, orders=150)


# ---------------------------------------------------------------------------
# Q-error math
# ---------------------------------------------------------------------------

class TestQError:
    def test_perfect_estimate_is_one(self):
        assert q_error(42, 42) == 1.0

    def test_symmetric(self):
        assert q_error(10, 40) == q_error(40, 10) == 4.0

    def test_always_at_least_one(self):
        for est, act in [(1, 1), (3, 7), (0, 0), (0, 5), (5, 0)]:
            assert q_error(est, act) >= 1.0

    def test_zero_actual_smooths_both_sides(self):
        # est=9 act=0 -> (9+1)/(0+1) = 10, finite and symmetric.
        assert q_error(9, 0) == 10.0
        assert q_error(0, 9) == 10.0

    def test_zero_vs_zero_is_perfect(self):
        assert q_error(0, 0) == 1.0

    def test_fractional_estimates(self):
        assert q_error(0.5, 1) == 2.0

    def test_negative_inputs_clamp_to_zero(self):
        assert q_error(-3, 0) == 1.0
        assert q_error(-1, 4) == 5.0

    def test_per_loop_normalisation(self):
        # An inner lookup estimated at 1 row/probe, probed 100 times,
        # returning 100 rows total, is a perfect estimate.
        assert per_loop_q(1, 100, 100) == 1.0
        assert per_loop_q(1, 300, 100) == 3.0

    def test_per_loop_zero_loops_is_neutral(self):
        # A node that never started left its estimate untested.
        assert per_loop_q(50, 0, 0) == 1.0

    def test_per_loop_single_loop_matches_q_error(self):
        assert per_loop_q(10, 25, 1) == q_error(10, 25)


# ---------------------------------------------------------------------------
# Per-statement quality snapshots
# ---------------------------------------------------------------------------

class TestStatementQuality:
    def test_every_node_reports_estimate_and_actual(self, db):
        result = db.run("SELECT o_orderkey FROM orders "
                        "WHERE o_totalprice > 5000")
        quality = result.plan_quality
        assert quality is not None
        assert quality.nodes, "plan with a node tree must report nodes"
        for node in quality.nodes:
            assert node.estimated >= 0.0
            assert node.actual >= 0
            assert node.loops >= 1
            assert node.q >= 1.0
        assert quality.max_q == max(n.q for n in quality.nodes)
        assert quality.worst in quality.nodes
        assert quality.worst_operator == quality.worst.operator

    def test_root_q_tracks_output_cardinality(self, db):
        result = db.run("SELECT COUNT(*) FROM orders")
        quality = result.plan_quality
        # The root aggregate produces exactly one row and is estimated
        # at one row: a perfect root estimate.
        assert quality.root_q == 1.0

    def test_both_optimizers_report_quality(self, db):
        for optimizer in ("mysql", "orca"):
            result = db.run(
                "SELECT c_name, COUNT(*) FROM customer, orders "
                "WHERE c_custkey = o_custkey GROUP BY c_name",
                optimizer=optimizer)
            assert result.plan_quality is not None
            assert result.plan_quality.nodes

    def test_nested_loop_inner_counts_loops(self, db):
        result = db.run(
            "SELECT c_name, o_totalprice FROM customer JOIN orders "
            "ON c_custkey = o_custkey")
        lookups = [n for n in result.plan_quality.nodes
                   if n.operator == "IndexLookup"]
        assert lookups, "expected an index-lookup inner side"
        assert any(n.loops > 1 for n in lookups)
        # Per-probe the lookup estimate is excellent; without loop
        # normalisation this node would score q == actual rows.
        for node in lookups:
            assert node.q < 4.0

    def test_empty_table_zero_actuals_stay_finite(self):
        empty = Database()
        empty.create_table(TableSchema("t", [
            Column.of("a", MySQLType.LONGLONG, nullable=False),
        ], [Index("PRIMARY", ("a",), primary=True)]))
        empty.analyze()
        quality = empty.run("SELECT a FROM t WHERE a > 5").plan_quality
        assert quality.nodes
        for node in quality.nodes:
            assert node.actual == 0
            assert node.q >= 1.0

    def test_null_only_group_keys(self, db):
        quality = db.run(
            "SELECT o_comment, COUNT(*) FROM orders "
            "WHERE o_comment IS NULL GROUP BY o_comment").plan_quality
        aggregates = [n for n in quality.nodes
                      if n.operator == "Aggregate"]
        assert aggregates
        # One NULL group comes out; the estimate survives the NULL key.
        assert aggregates[0].actual == 1
        assert aggregates[0].q >= 1.0

    def test_select_without_from_is_neutral(self, db):
        quality = db.run("SELECT 1 + 1").plan_quality
        assert quality.root_q == 1.0
        assert quality.max_q == 1.0

    def test_snapshot_survives_plan_reuse(self, db):
        sql = "SELECT o_orderkey FROM orders WHERE o_totalprice > 9000"
        first = db.run(sql).plan_quality
        saved = [n.actual for n in first.nodes]
        db.run(sql)  # cached-plan re-execution resets live counters
        assert [n.actual for n in first.nodes] == saved


# ---------------------------------------------------------------------------
# Row vs batch actuals on the equivalence corpus
# ---------------------------------------------------------------------------

class TestRowBatchActualParity:
    @pytest.mark.parametrize("sql", CORPUS)
    def test_actuals_agree(self, db, sql):
        row = db.run(sql, executor_mode="row").plan_quality
        batch = db.run(sql, executor_mode="batch").plan_quality
        assert len(row.nodes) == len(batch.nodes)
        limited = "LIMIT" in sql.upper()
        for r, b in zip(row.nodes, batch.nodes):
            assert r.operator == b.operator
            assert r.label == b.label
            if limited:
                # The row engine truncates mid-stream; the batch engine
                # counts whole emitted batches, so it may read ahead.
                assert b.actual >= r.actual
            else:
                assert b.actual == r.actual, (
                    f"{r.operator} actuals diverge on {sql!r}")


# ---------------------------------------------------------------------------
# Misestimation ledger mechanics
# ---------------------------------------------------------------------------

def _quality(max_q: float, operator: str = "TableScan"
             ) -> StatementQuality:
    node = NodeQuality(operator=operator, label=operator,
                       estimated=1.0, actual=int(max_q), loops=1,
                       q=max_q)
    return StatementQuality(nodes=[node], root_q=max_q, max_q=max_q,
                            worst=node)


class TestMisestimationLedger:
    def test_breach_streak_invalidates(self):
        ledger = MisestimationLedger(q_threshold=4.0,
                                     consecutive_threshold=3)
        outcomes = [ledger.record("k1", "f1", "select 1",
                                  _quality(10.0), "mysql")[1]
                    for __ in range(3)]
        assert outcomes == [False, False, True]
        entry = ledger.entry("k1")
        assert entry.breaches == 3
        assert entry.plan_invalidations == 1
        # The streak resets after an invalidation: no per-execution
        # thrash while the plan keeps misestimating.
        assert entry.consecutive_breaches == 0

    def test_uncached_runs_never_invalidate(self):
        # Breaches on cold compiles count toward the totals but advance
        # no streak: there is no cached plan for feedback to evict.
        ledger = MisestimationLedger(q_threshold=4.0,
                                     consecutive_threshold=2)
        for __ in range(5):
            __, invalidate = ledger.record(
                "k1", "f1", "select 1", _quality(10.0), "mysql",
                cached=False)
            assert invalidate is False
        entry = ledger.entry("k1")
        assert entry.breaches == 5
        assert entry.consecutive_breaches == 0
        assert entry.plan_invalidations == 0

    def test_good_execution_resets_streak(self):
        ledger = MisestimationLedger(q_threshold=4.0,
                                     consecutive_threshold=2)
        ledger.record("k1", "f1", "select 1", _quality(10.0), "mysql")
        ledger.record("k1", "f1", "select 1", _quality(1.0), "mysql")
        __, invalidate = ledger.record("k1", "f1", "select 1",
                                       _quality(10.0), "mysql")
        assert invalidate is False
        assert ledger.entry("k1").consecutive_breaches == 1

    def test_lru_eviction(self):
        ledger = MisestimationLedger(capacity=2)
        for key in ("a", "b", "c"):
            ledger.record(key, key, key, _quality(1.0), "mysql")
        assert ledger.entry("a") is None
        assert ledger.entry("b") is not None
        assert ledger.evictions == 1

    def test_worst_rankings(self):
        ledger = MisestimationLedger()
        ledger.record("small", "fs", "s", _quality(2.0, "Sort"), "mysql")
        ledger.record("big", "fb", "b", _quality(50.0, "HashJoin"),
                      "orca")
        worst = ledger.worst_fingerprints()
        assert worst[0].cache_key == "big"
        assert worst[0].worst_operator == "HashJoin"
        operators = ledger.worst_operators()
        assert operators[0]["operator"] == "HashJoin"
        assert operators[0]["max_q"] == 50.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MisestimationLedger(capacity=0)
        with pytest.raises(ValueError):
            MisestimationLedger(q_threshold=0.5)
        with pytest.raises(ValueError):
            MisestimationLedger(consecutive_threshold=0)


# ---------------------------------------------------------------------------
# Stale statistics drive the feedback loop end to end
# ---------------------------------------------------------------------------

def _feedback_db(**config_kwargs) -> Database:
    db = Database(DatabaseConfig(**config_kwargs))
    db.create_table(TableSchema("t", [
        Column.of("a", MySQLType.LONGLONG, nullable=False),
        Column.of("b", MySQLType.LONGLONG, nullable=False),
    ], [Index("PRIMARY", ("a",), primary=True)]))
    return db


class TestStaleStatisticsFeedback:
    def test_breach_streak_invalidates_cached_plan(self):
        db = _feedback_db(planq_q_threshold=4.0,
                          planq_consecutive_breaches=3)
        db.load("t", [(k, k % 7) for k in range(1, 11)])
        db.analyze()
        # Fault injection: grow the table 100x *after* ANALYZE, so the
        # optimizer keeps costing against 10-row statistics.
        db.load("t", [(k, k % 7) for k in range(11, 1001)])

        sql = "SELECT a FROM t WHERE b >= 0"
        cache_key = statement_cache_key(sql, "auto")
        invalidations_before = db.plan_cache.invalidations
        # Run 1 compiles cold (a miss advances no streak — there is no
        # cached plan to evict); runs 2-4 execute the cached stale plan
        # and complete the 3-breach streak.
        for __ in range(4):
            result = db.run(sql)
            assert len(result.rows) == 1000
            assert result.plan_quality.max_q > 4.0

        entry = db.misestimation_ledger.entry(cache_key)
        assert entry is not None
        assert entry.breaches == 4
        assert entry.plan_invalidations == 1
        # The feedback action: the cached plan was dropped, so the next
        # execution re-optimizes instead of reusing the stale plan.
        assert cache_key not in db.plan_cache
        assert db.plan_cache.invalidations == invalidations_before + 1
        assert db.metrics.count("planq.plan_invalidations") == 1
        assert db.metrics.count("planq.breaches") == 4

    def test_report_recommends_reanalyze(self):
        db = _feedback_db(planq_q_threshold=4.0,
                          planq_consecutive_breaches=2)
        db.load("t", [(k, k % 7) for k in range(1, 11)])
        db.analyze()
        db.load("t", [(k, k % 7) for k in range(11, 1001)])
        db.run("SELECT a FROM t WHERE b >= 0")

        report = db.plan_quality_report()
        assert "t" in report["reanalyze_recommendations"]
        staleness = {row["table"]: row for row in
                     report["stats_staleness"]}
        assert staleness["t"]["analyzed"] is True
        assert staleness["t"]["stats_rows"] == 10
        assert staleness["t"]["live_rows"] == 1000
        assert staleness["t"]["staleness"] == pytest.approx(99.0)
        assert report["worst_fingerprints"], "ledger must surface the " \
            "misestimated statement"
        assert report["ledger"]["breaches"] >= 1

        # Re-ANALYZE clears both the staleness flag and the breaches.
        db.analyze()
        db.run("SELECT a FROM t WHERE b >= 0")
        report = db.plan_quality_report()
        assert "t" not in report["reanalyze_recommendations"]

    def test_never_analyzed_table_is_flagged(self):
        db = _feedback_db()
        db.load("t", [(1, 1), (2, 2)])
        report = db.plan_quality_report()
        staleness = {row["table"]: row for row in
                     report["stats_staleness"]}
        assert staleness["t"]["analyzed"] is False
        assert staleness["t"]["staleness"] == 1.0
        assert "t" in report["reanalyze_recommendations"]

    def test_report_text_renders(self):
        db = _feedback_db(planq_q_threshold=2.0,
                          planq_consecutive_breaches=1)
        db.load("t", [(k, k) for k in range(1, 6)])
        db.analyze()
        db.load("t", [(k, k) for k in range(6, 101)])
        db.run("SELECT a FROM t WHERE b >= 0")
        text = db.plan_quality_report_text()
        assert "Plan quality" in text
        assert "REANALYZE" in text
        assert "worst statements" in text
        # The formatter is a pure function of the payload too.
        assert text == format_plan_quality_report(
            db.plan_quality_report())

    def test_config_validation(self):
        with pytest.raises(ReproError):
            DatabaseConfig(planq_q_threshold=0.5)
        with pytest.raises(ReproError):
            DatabaseConfig(planq_consecutive_breaches=0)
        with pytest.raises(ReproError):
            DatabaseConfig(slow_query_log_threshold_seconds=-1.0)


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE annotations
# ---------------------------------------------------------------------------

class TestExplainAnalyzeAnnotation:
    def test_annotation_per_node(self, db):
        text = db.explain_analyze(
            "SELECT o_status, COUNT(*) FROM orders GROUP BY o_status")
        for line in text.splitlines():
            if "-> " in line and "(cost=" in line:
                assert re.search(
                    r"\(estimated rows=[\d.]+ actual rows=\d+ "
                    r"q=[\d.]+(?: loops=\d+)?\)", line), line

    def test_loops_shown_for_nested_loop_inner(self, db):
        text = db.explain_analyze(
            "SELECT c_name, o_totalprice FROM customer JOIN orders "
            "ON c_custkey = o_custkey")
        assert re.search(r"loops=\d{2,}", text)

    def test_estimates_render_unclamped(self):
        from repro.executor.explain import _fmt_estimate
        assert _fmt_estimate(0) == "0"
        assert _fmt_estimate(0.25) == "0.25"
        assert _fmt_estimate(3.0) == "3"


# ---------------------------------------------------------------------------
# Prometheus export
# ---------------------------------------------------------------------------

_PROM_TYPE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary)$")
_PROM_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(\{[a-zA-Z_]+=\"[^\"]*\"\})? "
    r"(-?\d+(\.\d+)?([eE][-+]?\d+)?)$")


def _parse_prometheus(text: str) -> dict:
    """Validate Prometheus text exposition format; returns samples.

    Every line must be a ``# TYPE`` declaration or a sample whose
    metric family was declared first — the subset the exporter emits.
    """
    declared = {}
    samples = {}
    for line in text.splitlines():
        type_match = _PROM_TYPE.match(line)
        if type_match:
            declared[type_match.group(1)] = type_match.group(2)
            continue
        sample = _PROM_SAMPLE.match(line)
        assert sample, f"invalid Prometheus line: {line!r}"
        name = sample.group(1)
        family = name
        for suffix in ("_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in declared:
                family = name[:-len(suffix)]
        assert family in declared, f"undeclared metric {name!r}"
        samples[name + (sample.group(2) or "")] = float(sample.group(3))
    return samples


class TestMetricsExport:
    def test_export_parses_as_prometheus_text(self, db):
        db.run("SELECT COUNT(*) FROM orders")
        text = db.metrics_export()
        samples = _parse_prometheus(text)
        assert samples
        assert text.endswith("\n")

    def test_planq_metrics_present(self, db):
        db.run("SELECT COUNT(*) FROM orders")
        samples = _parse_prometheus(db.metrics_export())
        assert samples["repro_planq_statements_total"] >= 1
        assert samples['repro_planq_max_q{quantile="0.5"}'] >= 1.0
        assert samples["repro_planq_root_q_count"] >= 1

    def test_counter_names_are_sanitised(self, db):
        db.run("SELECT COUNT(*) FROM orders")
        text = db.metrics_export()
        assert "repro_statements_total_total" in text
        assert "." not in text.split("\n")[0].split(" ")[2]

    def test_empty_registry_exports_empty(self):
        from repro.observability import MetricsRegistry
        assert MetricsRegistry().to_prometheus() == ""


# ---------------------------------------------------------------------------
# Slow-query log
# ---------------------------------------------------------------------------

class TestSlowQueryLog:
    def test_jsonl_records(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        db = Database(DatabaseConfig(
            slow_query_log_path=str(path),
            slow_query_log_threshold_seconds=0.0))
        db.create_table(TableSchema("t", [
            Column.of("a", MySQLType.LONGLONG, nullable=False),
        ], [Index("PRIMARY", ("a",), primary=True)]))
        db.load("t", [(k,) for k in range(1, 21)])
        db.analyze()
        db.run("SELECT a FROM t WHERE a > 5")
        db.run("SELECT COUNT(*) FROM t")

        records = [json.loads(line) for line
                   in path.read_text().splitlines()]
        selects = [r for r in records
                   if r["sql"].upper().startswith("SELECT")]
        assert len(selects) == 2
        for record in selects:
            assert record["fingerprint"]
            assert record["optimizer"] in ("mysql", "orca")
            assert record["total_seconds"] >= 0.0
            assert record["root_q"] >= 1.0
            assert record["max_q"] >= 1.0
            assert "ts" in record
        assert db.metrics.count("slow_query_log.records") == len(records)

    def test_fast_statements_skip_the_log(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        db = Database(DatabaseConfig(
            slow_query_log_path=str(path),
            slow_query_log_threshold_seconds=10.0))
        db.run("SELECT 1")
        assert not path.exists()

    def test_disabled_by_default(self, db):
        assert db.config.slow_query_log_path is None
