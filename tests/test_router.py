"""Tests for query routing (Sections 3, 4.1) and the Database facade."""

import pytest

from repro import Database, DatabaseConfig
from repro.errors import ReproError, UnsupportedSqlError

from tests.conftest import build_mini_db


@pytest.fixture(scope="module")
def db():
    return build_mini_db(seed=9, orders=120)


class TestThresholdRouting:
    def test_default_threshold_is_three(self):
        # Section 4.1: "the resulting 'complex query threshold' is set to
        # three".
        assert DatabaseConfig().complex_query_threshold == 3

    def test_simple_query_uses_mysql(self, db):
        result = db.run("SELECT COUNT(*) FROM orders")
        assert result.optimizer_used == "mysql"

    def test_two_tables_below_threshold(self, db):
        result = db.run("""
            SELECT COUNT(*) FROM orders, customer
            WHERE o_custkey = c_custkey""")
        assert result.optimizer_used == "mysql"

    def test_three_tables_routed_to_orca(self, db):
        result = db.run("""
            SELECT COUNT(*) FROM orders, customer, lineitem
            WHERE o_custkey = c_custkey AND l_orderkey = o_orderkey""")
        assert result.optimizer_used == "orca"

    def test_subquery_tables_count_toward_threshold(self, db):
        # "Query complexity is defined to be the total number of table
        # references in a query" — including subqueries.
        result = db.run("""
            SELECT COUNT(*) FROM orders, customer
            WHERE o_custkey = c_custkey
              AND EXISTS (SELECT * FROM lineitem
                          WHERE l_orderkey = o_orderkey)""")
        assert result.optimizer_used == "orca"

    def test_threshold_configurable(self):
        db = build_mini_db(seed=9, orders=50)
        db.config.complex_query_threshold = 1
        assert db.run("SELECT COUNT(*) FROM orders").optimizer_used == \
            "orca"

    def test_orca_disabled_globally(self):
        db = build_mini_db(seed=9, orders=50)
        db.config.orca_enabled = False
        result = db.run("""
            SELECT COUNT(*) FROM orders, customer, lineitem
            WHERE o_custkey = c_custkey AND l_orderkey = o_orderkey""")
        assert result.optimizer_used == "mysql"

    def test_forced_optimizer_overrides_threshold(self, db):
        result = db.run("SELECT COUNT(*) FROM orders", optimizer="orca")
        assert result.optimizer_used == "orca"

    def test_unknown_optimizer_rejected(self, db):
        with pytest.raises(ReproError):
            db.run("SELECT 1 FROM orders", optimizer="hyper")


class TestExplainTagging:
    def test_orca_plans_tagged(self, db):
        text = db.explain("""
            SELECT COUNT(*) FROM orders, customer, lineitem
            WHERE o_custkey = c_custkey AND l_orderkey = o_orderkey""",
            optimizer="orca")
        assert text.startswith("EXPLAIN (ORCA)")

    def test_mysql_plans_untagged(self, db):
        text = db.explain("SELECT COUNT(*) FROM orders",
                          optimizer="mysql")
        assert text.startswith("EXPLAIN")
        assert "(ORCA)" not in text.splitlines()[0]

    def test_orca_costs_shown_in_explain(self, db):
        # Section 4.2.2: "the cost and row estimations are copied to the
        # iterators, and show up in ... the EXPLAIN output".
        text = db.explain("""
            SELECT COUNT(*) FROM orders, customer, lineitem
            WHERE o_custkey = c_custkey AND l_orderkey = o_orderkey""",
            optimizer="orca")
        assert "cost=" in text and "rows=" in text


class TestUnsupportedConstructs:
    def test_intersect_raises_mysql_error(self, db):
        with pytest.raises(UnsupportedSqlError):
            db.run("SELECT o_orderkey FROM orders INTERSECT "
                   "SELECT l_orderkey FROM lineitem")

    def test_recursive_cte_rejected(self, db):
        with pytest.raises(UnsupportedSqlError):
            db.run("WITH RECURSIVE r AS (SELECT 1) SELECT * FROM r")


class TestStatementResult:
    def test_timings_populated(self, db):
        result = db.run("SELECT COUNT(*) FROM orders")
        assert result.compile_seconds > 0
        assert result.execute_seconds >= 0

    def test_compile_only_returns_explain(self, db):
        result = db.compile_only("SELECT COUNT(*) FROM orders")
        assert result.explain is not None
        assert result.rows == []
        assert result.execute_seconds == 0.0

    def test_execute_returns_rows(self, db):
        rows = db.execute("SELECT COUNT(*) FROM customer")
        assert rows[0][0] == db.storage.heap("customer").row_count
