"""Tests for name resolution and the table-list structures."""

import pytest

from repro.errors import ResolutionError
from repro.sql import ast
from repro.sql.blocks import EntryKind, correlation_sources
from repro.sql.parser import parse_statement
from repro.sql.resolver import Resolver


def resolve(catalog, sql):
    stmt = parse_statement(sql)
    return Resolver(catalog).resolve(stmt)


class TestBasicResolution:
    def test_column_binds_to_entry(self, mini_catalog):
        block, __ = resolve(mini_catalog,
                            "SELECT o_orderkey FROM orders")
        ref = block.select_items[0].expr
        assert ref.entry_id == block.entries[0].entry_id
        assert ref.position == 0

    def test_entry_back_pointer_to_block(self, mini_catalog):
        # The TABLE_LIST link the plan converter relies on (Section 4.2.1).
        block, __ = resolve(mini_catalog, "SELECT * FROM orders")
        assert block.entries[0].block is block

    def test_alias_resolution(self, mini_catalog):
        block, __ = resolve(mini_catalog,
                            "SELECT o.o_orderkey FROM orders o")
        assert block.entries[0].alias == "o"

    def test_unknown_column(self, mini_catalog):
        with pytest.raises(ResolutionError):
            resolve(mini_catalog, "SELECT nothing FROM orders")

    def test_unknown_table(self, mini_catalog):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            resolve(mini_catalog, "SELECT 1 FROM missing")

    def test_ambiguous_column(self, mini_catalog):
        with pytest.raises(ResolutionError):
            resolve(mini_catalog,
                    "SELECT o_orderkey FROM orders o1, orders o2")

    def test_duplicate_alias(self, mini_catalog):
        with pytest.raises(ResolutionError):
            resolve(mini_catalog, "SELECT 1 FROM orders o, lineitem o")

    def test_star_expansion(self, mini_catalog):
        block, __ = resolve(mini_catalog, "SELECT * FROM part")
        assert [item.expr.column for item in block.select_items] == \
            ["p_partkey", "p_brand", "p_size"]

    def test_qualified_star_expansion(self, mini_catalog):
        block, __ = resolve(
            mini_catalog, "SELECT p.* FROM part p, orders")
        assert len(block.select_items) == 3


class TestJoinsAndPooling:
    def test_inner_join_on_pooled_into_where(self, mini_catalog):
        # MySQL pools inner-join ON conditions into WHERE (Listing 3).
        block, __ = resolve(mini_catalog, """
            SELECT o_orderkey FROM orders
            JOIN lineitem ON o_orderkey = l_orderkey
            WHERE l_quantity > 5""")
        assert len(block.where_conjuncts) == 2

    def test_left_join_keeps_on_condition(self, mini_catalog):
        block, __ = resolve(mini_catalog, """
            SELECT o_orderkey FROM orders
            LEFT JOIN lineitem ON o_orderkey = l_orderkey""")
        inner = block.entries[1]
        assert inner.is_outer_joined
        assert len(inner.outer_join_conjuncts) == 1
        assert not block.where_conjuncts

    def test_left_join_makes_columns_nullable(self, mini_catalog):
        block, __ = resolve(mini_catalog, """
            SELECT l_quantity FROM orders
            LEFT JOIN lineitem ON o_orderkey = l_orderkey""")
        inner = block.entries[1]
        assert all(col.nullable for col in inner.columns)


class TestSubqueriesAndDerived:
    def test_derived_table_columns(self, mini_catalog):
        block, __ = resolve(mini_catalog, """
            SELECT total FROM
            (SELECT o_custkey, SUM(o_totalprice) AS total
             FROM orders GROUP BY o_custkey) AS agg""")
        entry = block.entries[0]
        assert entry.kind is EntryKind.DERIVED
        assert [c.name for c in entry.columns] == ["o_custkey", "total"]

    def test_scalar_subquery_block_attached(self, mini_catalog):
        block, __ = resolve(mini_catalog, """
            SELECT o_orderkey FROM orders
            WHERE o_totalprice > (SELECT AVG(o_totalprice) FROM orders)""")
        sub = block.where_conjuncts[0].right.block
        assert sub is not None
        assert not correlation_sources(sub)

    def test_correlated_subquery_records_outer_refs(self, mini_catalog):
        block, __ = resolve(mini_catalog, """
            SELECT o_orderkey FROM orders
            WHERE o_totalprice > (SELECT AVG(l_price) FROM lineitem
                                  WHERE l_orderkey = o_orderkey)""")
        sub = block.where_conjuncts[0].right.block
        sources = correlation_sources(sub)
        assert sources == [block.entries[0].entry_id]

    def test_cte_consumers_share_binding(self, mini_catalog):
        block, __ = resolve(mini_catalog, """
            WITH big AS (SELECT o_custkey AS ck FROM orders
                         WHERE o_totalprice > 100)
            SELECT b1.ck FROM big b1, big b2 WHERE b1.ck = b2.ck""")
        first, second = block.entries
        assert first.kind is EntryKind.CTE
        assert first.cte is second.cte  # single shared producer binding

    def test_select_alias_in_order_by(self, mini_catalog):
        block, __ = resolve(mini_catalog, """
            SELECT o_custkey, COUNT(*) AS cnt FROM orders
            GROUP BY o_custkey ORDER BY cnt DESC""")
        order_expr = block.order_by[0].expr
        assert isinstance(order_expr, ast.AggCall)

    def test_select_alias_in_having(self, mini_catalog):
        block, __ = resolve(mini_catalog, """
            SELECT o_custkey, COUNT(*) AS cnt FROM orders
            GROUP BY o_custkey HAVING cnt > 3""")
        having = block.having_conjuncts[0]
        assert isinstance(having.left, ast.AggCall)

    def test_union_sides_resolved(self, mini_catalog):
        block, __ = resolve(mini_catalog, """
            SELECT o_orderkey FROM orders
            UNION ALL SELECT l_orderkey FROM lineitem""")
        assert len(block.set_ops) == 1

    def test_union_arity_mismatch(self, mini_catalog):
        with pytest.raises(ResolutionError):
            resolve(mini_catalog, """
                SELECT o_orderkey FROM orders
                UNION ALL SELECT l_orderkey, l_partkey FROM lineitem""")

    def test_aggregated_flag(self, mini_catalog):
        block, __ = resolve(mini_catalog,
                            "SELECT COUNT(*) FROM orders")
        assert block.aggregated
        block, __ = resolve(mini_catalog,
                            "SELECT o_orderkey FROM orders")
        assert not block.aggregated

    def test_window_specs_collected(self, mini_catalog):
        block, __ = resolve(mini_catalog, """
            SELECT RANK() OVER (PARTITION BY o_custkey
                                ORDER BY o_totalprice) FROM orders""")
        assert len(block.windows) == 1
