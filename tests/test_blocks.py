"""Tests for resolved-block utilities: references, correlation, typing."""

import datetime

import pytest

from repro.mysql_types import MySQLType
from repro.sql import ast
from repro.sql.blocks import (
    contains_aggregate,
    contains_subquery,
    correlation_sources,
    default_column_name,
    infer_type,
    referenced_entries,
)
from repro.sql.parser import parse_statement
from repro.sql.resolver import Resolver


def resolve(catalog, sql):
    return Resolver(catalog).resolve(parse_statement(sql))[0]


class TestReferencedEntries:
    def test_single_table(self, mini_catalog):
        block = resolve(mini_catalog,
                        "SELECT 1 FROM orders WHERE o_orderkey > 5")
        refs = referenced_entries(block.where_conjuncts[0])
        assert refs == frozenset({block.entries[0].entry_id})

    def test_join_conjunct_references_both(self, mini_catalog):
        block = resolve(mini_catalog, """
            SELECT 1 FROM orders, lineitem
            WHERE o_orderkey = l_orderkey""")
        refs = referenced_entries(block.where_conjuncts[0])
        assert refs == frozenset(e.entry_id for e in block.entries)

    def test_literal_has_no_references(self, mini_catalog):
        assert referenced_entries(ast.Literal(5)) == frozenset()

    def test_subquery_contributes_outer_refs(self, mini_catalog):
        block = resolve(mini_catalog, """
            SELECT 1 FROM orders
            WHERE o_totalprice > (SELECT AVG(l_price) FROM lineitem
                                  WHERE l_orderkey = o_orderkey)""")
        refs = referenced_entries(block.where_conjuncts[0])
        # The correlated subquery's binding to orders shows through.
        assert block.entries[0].entry_id in refs


class TestCorrelationSources:
    def test_uncorrelated_block_empty(self, mini_catalog):
        block = resolve(mini_catalog, "SELECT COUNT(*) FROM orders")
        assert correlation_sources(block) == []

    def test_nested_correlation_bubbles_up(self, mini_catalog):
        block = resolve(mini_catalog, """
            SELECT 1 FROM orders
            WHERE EXISTS (SELECT * FROM lineitem
                          WHERE l_orderkey = o_orderkey
                            AND l_quantity > (SELECT AVG(l_quantity)
                                              FROM lineitem l2
                                              WHERE l2.l_partkey =
                                                    l_partkey))""")
        outer_exists = block.where_conjuncts[0]
        sub = outer_exists.block
        sources = correlation_sources(sub)
        # The EXISTS block is correlated only to orders; its own nested
        # subquery's references to lineitem are internal to its closure.
        assert sources == [block.entries[0].entry_id]


class TestPredicateHelpers:
    def test_contains_aggregate(self):
        agg = ast.AggCall(ast.AggFunc.SUM, ast.Literal(1))
        wrapped = ast.BinaryExpr(ast.BinOp.GT, agg, ast.Literal(0))
        assert contains_aggregate(wrapped)
        assert not contains_aggregate(ast.Literal(1))

    def test_contains_subquery(self):
        sub = ast.ScalarSubquery(None)
        wrapped = ast.BinaryExpr(ast.BinOp.GT, ast.Literal(1), sub)
        assert contains_subquery(wrapped)
        assert not contains_subquery(ast.Literal(1))

    def test_conjunction_roundtrip(self):
        parts = [ast.Literal(i) for i in range(3)]
        combined = ast.make_conjunction(parts)
        assert ast.conjuncts_of(combined) == parts
        assert ast.make_conjunction([]) is None

    def test_disjunction_roundtrip(self):
        parts = [ast.Literal(i) for i in range(3)]
        combined = ast.make_disjunction(parts)
        assert ast.disjuncts_of(combined) == parts


class TestTypeInference:
    def _item_type(self, catalog, select):
        block = resolve(catalog, f"SELECT {select} FROM orders")
        return infer_type(block.select_items[0].expr)

    def test_column_type_propagates(self, mini_catalog):
        assert self._item_type(mini_catalog, "o_orderdate").base is \
            MySQLType.DATE
        assert self._item_type(mini_catalog, "o_totalprice").base is \
            MySQLType.DOUBLE

    def test_comparison_is_bool(self, mini_catalog):
        assert self._item_type(
            mini_catalog, "o_totalprice > 5").base is MySQLType.BOOL

    def test_count_is_integer(self, mini_catalog):
        assert self._item_type(mini_catalog, "COUNT(*)").base is \
            MySQLType.LONGLONG

    def test_avg_is_double(self, mini_catalog):
        assert self._item_type(
            mini_catalog, "AVG(o_orderkey)").base is MySQLType.DOUBLE

    def test_min_keeps_argument_type(self, mini_catalog):
        assert self._item_type(
            mini_catalog, "MIN(o_orderdate)").base is MySQLType.DATE

    def test_division_is_double(self, mini_catalog):
        assert self._item_type(
            mini_catalog, "o_orderkey / 2").base is MySQLType.DOUBLE

    def test_int_addition_stays_integral(self, mini_catalog):
        assert self._item_type(
            mini_catalog, "o_orderkey + 1").base is MySQLType.LONGLONG

    def test_cast_target(self, mini_catalog):
        assert self._item_type(
            mini_catalog,
            "CAST(o_orderdate AS DATE)").base is MySQLType.DATE

    def test_case_takes_branch_type(self, mini_catalog):
        expr_type = self._item_type(
            mini_catalog,
            "CASE WHEN o_orderkey > 1 THEN 'yes' ELSE 'no' END")
        assert expr_type.base is MySQLType.VARCHAR


class TestOutputColumns:
    def test_alias_names_win(self, mini_catalog):
        block = resolve(mini_catalog,
                        "SELECT o_orderkey AS k, COUNT(*) FROM orders "
                        "GROUP BY o_orderkey")
        columns = block.output_columns()
        assert columns[0].name == "k"
        # Anonymous expressions get the MySQL Name_exp_<n> convention.
        assert columns[1].name == "Name_exp_2"

    def test_default_column_name(self):
        ref = ast.ColumnRef("t", "x", 0, 0)
        assert default_column_name(ref, 0) == "x"
        assert default_column_name(ast.Literal(1), 4) == "Name_exp_5"