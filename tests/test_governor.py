"""Execution governance: deadlines, cancellation, memory accounting.

The execution governor is the execute-stage counterpart of PR 1's
optimize-stage containment: every statement can carry a wall-clock
deadline, a cooperative cancel token, and a tracked-memory cap, all
enforced at cooperative checkpoints in both executor engines and at
every compile-stage boundary.  These tests prove the bounds fire at
each pipeline stage, that an aborted statement leaves the Database
exactly as if it never ran (plan cache, ledger streaks, storage), and
that the one graceful-degradation path — a hash-aggregate memory
breach retrying as a streaming aggregate — returns identical rows.
"""

import threading
import time

import pytest

from repro import (
    CancelToken,
    Database,
    DatabaseConfig,
    FallbackReason,
    FaultInjector,
)
from repro.errors import (
    DeadlineExceededError,
    ExecutionError,
    GovernorError,
    ReproError,
    ResourceExhaustedError,
    StatementCancelledError,
)
from repro.governor import ExecutionGovernor, MemoryAccountant, approx_row_bytes
from repro.resilience import CompileBudget, classify_execution_exception

from tests.conftest import build_mini_db

JOIN_SQL = """
SELECT COUNT(*) FROM customer, orders, lineitem
WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey
"""

AGG_SQL = ("SELECT l_orderkey, COUNT(*), SUM(l_quantity) "
           "FROM lineitem GROUP BY l_orderkey")


@pytest.fixture()
def db():
    return build_mini_db(seed=71, orders=80)


def assert_db_clean_and_reusable(db, expected, sql=JOIN_SQL):
    """The contract after any abort: same Database, same answers."""
    result = db.run(sql)
    assert result.rows == expected


# -- governor unit behaviour ----------------------------------------------------------


class TestGovernorUnits:
    def test_deadline_raises_typed_error(self):
        clock = iter([0.0, 10.0]).__next__
        gov = ExecutionGovernor(timeout_seconds=5.0, clock=clock)
        with pytest.raises(DeadlineExceededError) as info:
            gov.checkpoint(stage="execute")
        assert info.value.elapsed == pytest.approx(10.0)
        assert info.value.budget == pytest.approx(5.0)
        assert "execute" in str(info.value)

    def test_cancellation_wins_over_deadline(self):
        clock = iter([0.0, 10.0]).__next__
        gov = ExecutionGovernor(timeout_seconds=5.0, clock=clock)
        gov.cancel("killed by test")
        with pytest.raises(StatementCancelledError) as info:
            gov.checkpoint()
        assert "killed by test" in str(info.value)

    def test_cancel_after_checks_is_deterministic(self):
        gov = ExecutionGovernor(
            cancel_token=CancelToken(cancel_after_checks=3))
        gov.checkpoint()
        gov.checkpoint()
        with pytest.raises(StatementCancelledError):
            gov.checkpoint()

    def test_cancel_after_checks_validates(self):
        with pytest.raises(ValueError):
            CancelToken(cancel_after_checks=0)

    def test_tick_amortises_to_interval(self):
        gov = ExecutionGovernor(check_interval=10,
                                cancel_token=CancelToken(
                                    cancel_after_checks=1))
        for __ in range(9):
            gov.tick()
        with pytest.raises(StatementCancelledError):
            gov.tick()

    def test_wrap_rows_checkpoints_mid_stream(self):
        gov = ExecutionGovernor(check_interval=4,
                                cancel_token=CancelToken(
                                    cancel_after_checks=1))
        out = []
        with pytest.raises(StatementCancelledError):
            for row in gov.wrap_rows(range(100)):
                out.append(row)
        assert out == [0, 1, 2]

    def test_memory_accountant_charges_and_releases(self):
        acct = MemoryAccountant(limit_bytes=1000)
        acct.charge(600, "sort")
        acct.charge(300, "sort")
        assert acct.tracked_bytes == 900
        assert acct.peak_bytes == 900
        with pytest.raises(ResourceExhaustedError) as info:
            acct.charge(200, "hash_join_build")
        assert info.value.operator == "hash_join_build"
        assert acct.breach_operator == "hash_join_build"
        acct.release(1100)
        assert acct.tracked_bytes == 0
        assert acct.peak_bytes == 1100

    def test_spillable_charge_never_raises(self):
        acct = MemoryAccountant(limit_bytes=100)
        acct.charge(500, "sort", spillable=True)
        assert acct.spill_events == 1
        assert acct.spilled_bytes == 500

    def test_cap_compile_budget_takes_tighter_bound(self):
        clock = iter([0.0, 1.0, 1.0]).__next__
        gov = ExecutionGovernor(timeout_seconds=3.0, clock=clock)
        budget = CompileBudget(seconds=60.0)
        assert gov.cap_compile_budget(budget).seconds == pytest.approx(2.0)
        loose = ExecutionGovernor(timeout_seconds=100.0)
        kept = CompileBudget(seconds=0.5)
        assert loose.cap_compile_budget(kept).seconds == pytest.approx(0.5)

    def test_approx_row_bytes_handles_odd_values(self):
        assert approx_row_bytes(None) > 0
        assert approx_row_bytes((1, "abc", None)) > 0
        assert approx_row_bytes((1, 2)) < approx_row_bytes(
            tuple("x" * 100 for __ in range(10)))

    def test_classification_covers_every_abort_type(self):
        assert classify_execution_exception(
            DeadlineExceededError(1.0, 0.5)) is \
            FallbackReason.DEADLINE_EXCEEDED
        assert classify_execution_exception(
            StatementCancelledError()) is \
            FallbackReason.STATEMENT_CANCELLED
        assert classify_execution_exception(
            ResourceExhaustedError("sort", 10, 5)) is \
            FallbackReason.RESOURCE_EXHAUSTED
        assert classify_execution_exception(
            ExecutionError("boom")) is FallbackReason.EXEC_RUNTIME_ERROR


# -- stage-boundary aborts ------------------------------------------------------------


class TestAbortAtEveryStage:
    """A pre-cancelled token (or zero deadline) aborts at the named
    stage; the same Database then runs the statement normally."""

    def test_cancelled_during_parse(self, db):
        expected = db.execute(JOIN_SQL)
        token = CancelToken()
        token.cancel("before parse")
        with pytest.raises(StatementCancelledError) as info:
            db.run(JOIN_SQL, use_plan_cache=False, cancel_token=token)
        assert info.value.stage == "parse"
        assert_db_clean_and_reusable(db, expected)

    def test_zero_deadline_aborts_immediately(self, db):
        expected = db.execute(JOIN_SQL)
        with pytest.raises(DeadlineExceededError):
            db.run(JOIN_SQL, use_plan_cache=False, timeout_seconds=0.0)
        assert_db_clean_and_reusable(db, expected)

    def test_cancelled_during_compile(self, db):
        expected = db.execute(JOIN_SQL)
        # Checkpoint 1 is parse; the second lands at a compile-stage
        # boundary (prepare / optimize / refine).
        token = CancelToken(cancel_after_checks=2)
        with pytest.raises(StatementCancelledError) as info:
            db.run(JOIN_SQL, use_plan_cache=False, cancel_token=token)
        assert info.value.stage in ("prepare", "orca_detour",
                                    "optimize", "refine")
        assert_db_clean_and_reusable(db, expected)

    def test_cancelled_between_batches(self, db):
        expected = db.execute(JOIN_SQL)
        # Far past every compile boundary: the batch engine's per-batch
        # checkpoint (ExecutionRuntime.note_batch) must notice.
        token = CancelToken(cancel_after_checks=7)
        with pytest.raises(StatementCancelledError):
            db.run(JOIN_SQL, use_plan_cache=False, cancel_token=token,
                   executor_mode="batch")
        assert_db_clean_and_reusable(db, expected)

    def test_cancelled_inside_row_mode_join_chain(self, db):
        expected = db.execute(JOIN_SQL)
        # A tight check interval so the row engine's wrap_rows / tick
        # checkpoints fire on this small dataset; cancel lands well
        # past the four compile-stage checkpoints.
        db.config.governor_check_interval = 8
        token = CancelToken(cancel_after_checks=7)
        with pytest.raises(StatementCancelledError):
            db.run(JOIN_SQL, use_plan_cache=False, cancel_token=token,
                   executor_mode="row")
        db.config.governor_check_interval = 256
        assert_db_clean_and_reusable(db, expected)

    def test_deadline_caps_compile_budget_in_detour(self, db):
        # A sleep injected into the memo search overruns the deadline;
        # because the governor caps the CompileBudget to the remaining
        # deadline the detour aborts as BUDGET_EXCEEDED (falling back
        # to MySQL), and the statement then dies at the next stage
        # checkpoint with the deadline error — never a hang.
        expected = db.execute(JOIN_SQL)
        db.config.fault_injector = FaultInjector().arm(
            "optimizer", "sleep", sleep_seconds=0.2)
        with pytest.raises(DeadlineExceededError):
            db.run(JOIN_SQL, optimizer="orca", use_plan_cache=False,
                   timeout_seconds=0.05)
        assert db.fallback_log.count(FallbackReason.BUDGET_EXCEEDED) == 1
        db.config.fault_injector = None
        assert_db_clean_and_reusable(db, expected)

    def test_cancelled_before_dml_leaves_storage_untouched(self, db):
        before = db.execute("SELECT COUNT(*) FROM orders")
        token = CancelToken(cancel_after_checks=2)
        with pytest.raises(StatementCancelledError) as info:
            db.run("INSERT INTO orders VALUES (9001, 1, 'O', 10.0, "
                   "DATE '1995-01-01', '1-PRIO', NULL)",
                   cancel_token=token)
        assert info.value.stage == "dml"
        assert db.execute("SELECT COUNT(*) FROM orders") == before


# -- cross-thread cancellation --------------------------------------------------------


class TestCancelApi:
    def test_cancel_unknown_statement_returns_false(self, db):
        assert db.cancel(999) is False

    def test_cancel_from_another_thread(self, db):
        # A cross join big enough (~80^2 * lines) that cancellation
        # always lands before completion at default checkpoints.
        sql = ("SELECT COUNT(*) FROM lineitem l1, lineitem l2, "
               "lineitem l3 WHERE l1.l_quantity + l2.l_quantity "
               "+ l3.l_quantity > -1")
        caught = {}
        started = threading.Event()

        def worker():
            started.set()
            try:
                db.run(sql, use_plan_cache=False)
            except GovernorError as exc:
                caught["error"] = exc

        thread = threading.Thread(target=worker)
        thread.start()
        started.wait(5.0)
        # Poll the registry until the statement shows up, then cancel.
        deadline = time.perf_counter() + 10.0
        cancelled = False
        while time.perf_counter() < deadline:
            active = db.active_statements()
            if active:
                sid = next(iter(active))
                assert "lineitem" in active[sid]
                cancelled = db.cancel(sid, "killed from main thread")
                if cancelled:
                    break
            time.sleep(0.005)
        thread.join(30.0)
        assert not thread.is_alive()
        assert cancelled
        assert isinstance(caught.get("error"), StatementCancelledError)
        assert "killed from main thread" in str(caught["error"])
        assert db.active_statements() == {}

    def test_statement_id_is_monotonic_and_reported(self, db):
        first = db.run("SELECT COUNT(*) FROM orders")
        second = db.run("SELECT COUNT(*) FROM orders")
        assert second.statement_id == first.statement_id + 1

    def test_governor_disabled_runs_ungoverned(self):
        db = Database(DatabaseConfig(governor_enabled=False))
        db2 = build_mini_db(seed=71, orders=20)
        db.catalog, db.storage = db2.catalog, db2.storage
        result = db.run("SELECT COUNT(*) FROM orders")
        assert result.governor_stats is None
        # Explicit bounds still create a governor on demand.
        bounded = db.run("SELECT COUNT(*) FROM orders",
                         timeout_seconds=30.0)
        assert bounded.governor_stats is not None


# -- memory governance ----------------------------------------------------------------


class TestMemoryGovernance:
    def test_join_build_breach_raises_typed_error(self, db):
        expected = db.execute(JOIN_SQL)
        with pytest.raises(ResourceExhaustedError) as info:
            db.run(JOIN_SQL, use_plan_cache=False,
                   memory_limit_bytes=2000)
        assert info.value.operator in ("hash_join_build", "sort",
                                       "hash_agg", "materialize")
        assert info.value.limit_bytes == 2000
        assert_db_clean_and_reusable(db, expected)

    def test_hash_agg_breach_degrades_to_streaming_retry(self, db):
        plain = db.run(AGG_SQL, optimizer="orca", use_plan_cache=False)
        assert "(hash)" in db.explain(AGG_SQL, optimizer="orca")
        assert plain.low_memory_retry is False
        peak = plain.governor_stats["peak_tracked_bytes"]
        assert peak > 0
        governed = db.run(AGG_SQL, optimizer="orca", use_plan_cache=False,
                          memory_limit_bytes=max(1000, peak // 3))
        assert governed.low_memory_retry is True
        assert governed.rows == plain.rows
        assert governed.governor_stats["low_memory"] is True
        assert db.metrics.count("governor.stream_agg_retries") == 1
        assert db.metrics.count("governor.mem_breaches") == 1
        assert db.fallback_log.count(
            FallbackReason.RESOURCE_EXHAUSTED) == 1

    def test_retry_disabled_surfaces_the_breach(self, db):
        db.config.governor_stream_agg_retry = False
        plain = db.run(AGG_SQL, optimizer="orca", use_plan_cache=False)
        peak = plain.governor_stats["peak_tracked_bytes"]
        with pytest.raises(ResourceExhaustedError) as info:
            db.run(AGG_SQL, optimizer="orca", use_plan_cache=False,
                   memory_limit_bytes=max(1000, peak // 3))
        assert info.value.operator == "hash_agg"

    def test_memory_tracking_is_released_after_success(self, db):
        result = db.run(JOIN_SQL, use_plan_cache=False)
        stats = result.governor_stats
        assert stats["peak_tracked_bytes"] > 0
        assert stats["tracked_bytes"] == 0

    def test_alloc_spike_breaches_on_demand(self, db):
        expected = db.execute(JOIN_SQL)
        db.config.fault_injector = FaultInjector().arm(
            "alloc_spike", "spike", spike_bytes=1 << 30, times=1)
        with pytest.raises(ResourceExhaustedError):
            db.run(JOIN_SQL, use_plan_cache=False,
                   memory_limit_bytes=64 << 20)
        db.config.fault_injector = None
        assert_db_clean_and_reusable(db, expected)


# -- execution fault injection --------------------------------------------------------


class TestExecutionFaults:
    @pytest.mark.parametrize("mode", ["batch", "row"])
    def test_scan_io_fault_aborts_classified(self, db, mode):
        expected = db.execute(JOIN_SQL)
        db.config.fault_injector = FaultInjector().arm(
            "scan_io", "typed", times=1)
        with pytest.raises(ExecutionError):
            db.run(JOIN_SQL, use_plan_cache=False, executor_mode=mode)
        event = db.fallback_log.last_event
        assert event.reason is FallbackReason.EXEC_RUNTIME_ERROR
        db.config.fault_injector = None
        assert_db_clean_and_reusable(db, expected)

    def test_mid_batch_crash_is_wrapped_and_classified(self, db):
        expected = db.execute(JOIN_SQL)
        db.config.fault_injector = FaultInjector().arm(
            "mid_batch", "crash", times=1)
        with pytest.raises(ExecutionError) as info:
            db.run(JOIN_SQL, use_plan_cache=False, executor_mode="batch")
        assert "KeyError" in str(info.value)
        assert db.metrics.count("governor.exec_errors") == 1
        db.config.fault_injector = None
        assert_db_clean_and_reusable(db, expected)


# -- abort hygiene --------------------------------------------------------------------


class TestAbortHygiene:
    """An aborted statement leaves the Database as if it never ran."""

    def test_aborted_statement_never_enters_plan_cache(self, db):
        token = CancelToken(cancel_after_checks=7)
        with pytest.raises(StatementCancelledError):
            db.run(JOIN_SQL, cancel_token=token)
        assert db.plan_cache.stats()["size"] == 0
        # The next (successful) run compiles fresh — a miss, not a hit.
        result = db.run(JOIN_SQL)
        assert result.plan_cache_hit is False
        again = db.run(JOIN_SQL)
        assert again.plan_cache_hit is True

    def test_aborted_statement_does_not_advance_ledger(self, db):
        db.run(JOIN_SQL)  # populate cache + ledger entry
        ledger_before = db.misestimation_ledger.stats()
        executions_before = [
            e.executions
            for e in db.misestimation_ledger.worst_fingerprints()]
        token = CancelToken(cancel_after_checks=7)
        with pytest.raises(StatementCancelledError):
            db.run(JOIN_SQL, cancel_token=token)
        after = db.misestimation_ledger.stats()
        assert after["breaches"] == ledger_before["breaches"]
        assert after["aborted"] == ledger_before["aborted"] + 1
        assert [e.executions
                for e in db.misestimation_ledger.worst_fingerprints()] \
            == executions_before

    def test_abort_metrics_and_result_fields(self, db):
        with pytest.raises(DeadlineExceededError):
            db.run(JOIN_SQL, use_plan_cache=False, timeout_seconds=0.0)
        assert db.metrics.count("governor.deadline_exceeded") == 1
        assert db.metrics.count("statements.aborted") == 1
        token = CancelToken()
        token.cancel()
        with pytest.raises(StatementCancelledError):
            db.run(JOIN_SQL, use_plan_cache=False, cancel_token=token)
        assert db.metrics.count("governor.cancelled") == 1
        assert db.metrics.count("statements.aborted") == 2

    def test_latency_histograms_skip_aborted_runs(self, db):
        with pytest.raises(DeadlineExceededError):
            db.run(JOIN_SQL, use_plan_cache=False, timeout_seconds=0.0)
        hist = db.metrics.histogram("statement.compile_seconds")
        assert hist is None or hist.count == 0


# -- reporting surfaces ---------------------------------------------------------------


class TestReportingSurfaces:
    def test_governor_stats_on_result(self, db):
        result = db.run(JOIN_SQL, timeout_seconds=30.0)
        stats = result.governor_stats
        assert stats["checkpoints"] > 0
        assert 0.0 <= stats["deadline_used_fraction"] < 1.0
        assert stats["cancelled"] is False

    def test_explain_analyze_footer_has_governor_line(self, db):
        text = db.explain(JOIN_SQL, analyze=True)
        assert "governor: peak tracked memory" in text
        assert "checkpoints" in text

    def test_empty_histogram_exports_without_quantiles(self):
        db = Database()
        text = db.metrics_export()
        assert "repro_governor_peak_bytes_count 0" in text
        assert 'repro_governor_peak_bytes{quantile' not in text
        assert "(empty)" in db.metrics.report()
        # resilience_report tolerates a completely idle Database too.
        assert "open circuits" in db.resilience_report()

    def test_peak_bytes_histogram_fills_after_statements(self, db):
        db.run(JOIN_SQL)
        text = db.metrics_export()
        assert 'repro_governor_peak_bytes{quantile="0.5"}' in text

    def test_config_validation(self):
        with pytest.raises(ReproError):
            DatabaseConfig(statement_timeout_seconds=-1.0)
        with pytest.raises(ReproError):
            DatabaseConfig(statement_memory_limit_bytes=0)
        with pytest.raises(ReproError):
            DatabaseConfig(governor_check_interval=0)
