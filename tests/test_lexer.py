"""Tests for the SQL lexer."""

import pytest

from repro.errors import LexerError
from repro.sql.lexer import TokenType, tokenize


def kinds(sql):
    return [(t.type, t.value) for t in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_keywords_uppercased(self):
        tokens = tokenize("select FROM wHeRe")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_keep_case(self):
        tokens = tokenize("LineItem o_OrderKey")
        assert [t.value for t in tokens[:-1]] == ["LineItem", "o_OrderKey"]

    def test_numbers(self):
        tokens = tokenize("1 2.5 0.001 1e6 3.5E-2")
        assert [t.value for t in tokens[:-1]] == \
            ["1", "2.5", "0.001", "1e6", "3.5E-2"]
        assert all(t.type is TokenType.NUMBER for t in tokens[:-1])

    def test_strings_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "it's"

    def test_operators(self):
        values = [t.value for t in tokenize("<= >= <> != = < > + - * / %")
                  [:-1]]
        assert values == ["<=", ">=", "<>", "!=", "=", "<", ">", "+", "-",
                          "*", "/", "%"]

    def test_punctuation(self):
        values = [t.value for t in tokenize("(a, b.c)")[:-1]]
        assert values == ["(", "a", ",", "b", ".", "c", ")"]

    def test_eof_terminates(self):
        assert tokenize("")[-1].type is TokenType.EOF


class TestCommentsAndQuoting:
    def test_line_comment(self):
        tokens = tokenize("SELECT -- comment here\n 1")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "1"]

    def test_block_comment(self):
        tokens = tokenize("SELECT /* stuff\nmore */ 1")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "1"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexerError):
            tokenize("SELECT /* never closed")

    def test_backtick_identifier(self):
        tokens = tokenize("`weird name`")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "weird name"

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("'open")

    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("SELECT @")

    def test_semicolons_ignored(self):
        tokens = tokenize("SELECT 1;")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "1"]
