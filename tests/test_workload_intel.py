"""Workload intelligence: the statement repository, column-usage
tracking, plan-change/regression detection, and the advisor.

Covers the repository's LRU eviction under fingerprint churn (with the
monotonic column-usage aggregates surviving it), the plan-phase folding
and p95-regression rule, advisor determinism (the same history must
produce byte-identical recommendations), the what-if index probe, the
auto-ANALYZE hook, the export surfaces (``workload_report``, hit-ratio
gauges, ``plan_hash`` in the slow-query log), and the ``run_suite``
seed threading.
"""

import json

import pytest

from repro import Database, DatabaseConfig
from repro.errors import ReproError
from repro.resilience import FaultInjector, statement_fingerprint
from repro.workload import Advisor, WorkloadRepository
from tests.conftest import build_mini_db


@pytest.fixture(scope="module")
def db():
    return build_mini_db(seed=41, orders=200)


def _history(repo: WorkloadRepository, fingerprint: str, sql: str,
             plan_hash: str, touches=(), latency: float = 0.002,
             runs: int = 1, **kwargs) -> None:
    """Fold ``runs`` identical executions into ``repo``."""
    defaults = dict(rows=10, optimizer_used="mysql", executor_mode="row",
                    plan_cache_hit=False, breached=False, fallback=False)
    defaults.update(kwargs)
    for __ in range(runs):
        repo.record(fingerprint, sql, plan_hash, tuple(touches),
                    latency, **defaults)


# ---------------------------------------------------------------------------
# Repository: LRU eviction under fingerprint churn
# ---------------------------------------------------------------------------

class TestRepositoryEviction:
    def test_capacity_bounds_entries_under_churn(self):
        repo = WorkloadRepository(capacity=4)
        for i in range(25):
            _history(repo, f"fp{i:02d}", f"SELECT {i}", "aaaa",
                     touches=(("orders", "o_custkey", "join"),))
        assert len(repo) == 4
        assert repo.evictions == 21
        # Strict LRU: only the four most recent fingerprints survive.
        assert [e.fingerprint for e in repo.entries()] == \
            ["fp21", "fp22", "fp23", "fp24"]

    def test_reexecution_refreshes_lru_position(self):
        repo = WorkloadRepository(capacity=2)
        _history(repo, "old", "SELECT 1", "aaaa")
        _history(repo, "mid", "SELECT 2", "bbbb")
        _history(repo, "old", "SELECT 1", "aaaa")  # touch -> MRU
        _history(repo, "new", "SELECT 3", "cccc")  # evicts "mid"
        assert repo.entry("old") is not None
        assert repo.entry("mid") is None
        assert repo.entry("new") is not None

    def test_column_usage_survives_eviction(self):
        repo = WorkloadRepository(capacity=1)
        for i in range(10):
            _history(repo, f"fp{i}", f"SELECT {i}", "aaaa",
                     touches=(("orders", "o_totalprice", "predicate"),),
                     breached=(i % 2 == 0))
        assert len(repo) == 1
        usage = repo.usage_for("orders", "o_totalprice")
        assert usage == {"predicate": 10}
        # Breach attribution is workload-level too: 5 of 10 breached.
        assert repo.table_breach_rate("orders") == 0.5

    def test_stats_and_snapshot_shapes(self):
        repo = WorkloadRepository(capacity=8)
        _history(repo, "fp", "SELECT 1", "aaaa", runs=3,
                 touches=(("orders", "o_custkey", "join"),))
        stats = repo.stats()
        assert stats["size"] == 1 and stats["recorded"] == 3
        snap = repo.snapshot()
        assert snap["statements"][0]["executions"] == 3
        assert snap["column_usage"][0]["executions"] == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadRepository(capacity=0)
        with pytest.raises(ValueError):
            WorkloadRepository(regression_factor=1.0)
        with pytest.raises(ValueError):
            WorkloadRepository(regression_min_samples=0)


# ---------------------------------------------------------------------------
# Plan phases and regression detection
# ---------------------------------------------------------------------------

class TestPlanRegression:
    def test_plan_change_without_slowdown_is_not_a_regression(self):
        repo = WorkloadRepository()
        _history(repo, "fp", "Q", "aaaa", latency=0.010, runs=4)
        _history(repo, "fp", "Q", "bbbb", latency=0.011, runs=4)
        assert repo.entry("fp").plan_changes == 1
        assert repo.unresolved_regressions() == []

    def test_p95_jump_past_factor_flags_once(self):
        repo = WorkloadRepository(regression_factor=1.5,
                                  regression_min_samples=3)
        _history(repo, "fp", "Q", "aaaa", latency=0.010, runs=4)
        _history(repo, "fp", "Q", "bbbb", latency=0.030, runs=6)
        pending = repo.unresolved_regressions()
        assert len(pending) == 1
        regression = pending[0]
        assert regression.from_hash == "aaaa"
        assert regression.to_hash == "bbbb"
        assert regression.factor == pytest.approx(3.0)

    def test_needs_min_samples_on_both_sides(self):
        repo = WorkloadRepository(regression_min_samples=3)
        _history(repo, "fp", "Q", "aaaa", latency=0.010, runs=2)
        _history(repo, "fp", "Q", "bbbb", latency=0.090, runs=10)
        # Old phase closed with only 2 samples: never checked.
        assert repo.unresolved_regressions() == []

    def test_resolve_marks_handled(self):
        repo = WorkloadRepository()
        _history(repo, "fp", "Q", "aaaa", latency=0.010, runs=3)
        _history(repo, "fp", "Q", "bbbb", latency=0.050, runs=3)
        assert len(repo.unresolved_regressions()) == 1
        assert repo.resolve_regressions("fp") == 1
        assert repo.unresolved_regressions() == []


# ---------------------------------------------------------------------------
# Touch extraction and plan hashing against real plans
# ---------------------------------------------------------------------------

class TestPlanFacts:
    def test_touch_kinds_from_join_group_sort(self, db):
        sql = ("SELECT o_status, COUNT(*) FROM orders, lineitem "
               "WHERE o_orderkey = l_orderkey AND o_totalprice > 500 "
               "GROUP BY o_status ORDER BY o_status")
        db.run(sql)
        entry = db.workload.entry(statement_fingerprint(sql))
        touches = set(entry.touches)
        assert ("orders", "o_totalprice", "predicate") in touches
        assert ("orders", "o_status", "group") in touches
        assert ("orders", "o_status", "sort") in touches
        # Join columns keep the join kind on at least one side.
        assert any(kind == "join" for (_, __, kind) in touches)

    def test_plan_hash_is_literal_free(self, db):
        a = db.run("SELECT * FROM orders WHERE o_totalprice > 100")
        b = db.run("SELECT * FROM orders WHERE o_totalprice > 9999")
        assert a.plan_hash == b.plan_hash
        c = db.run("SELECT * FROM orders WHERE o_orderkey = 5")
        assert c.plan_hash != a.plan_hash  # index lookup, new shape

    def test_hash_and_touches_cached_on_executor(self, db):
        sql = "SELECT COUNT(*) FROM lineitem WHERE l_quantity > 10"
        db.run(sql)
        result = db.run(sql)
        assert result.plan_cache_hit
        entry = db.workload.entry(statement_fingerprint(sql))
        assert entry.plan_hash == result.plan_hash
        assert entry.touches == (("lineitem", "l_quantity", "predicate"),)


# ---------------------------------------------------------------------------
# Advisor
# ---------------------------------------------------------------------------

def _stale_db() -> Database:
    """A database whose orders/lineitem statistics are badly stale."""
    db = build_mini_db(seed=13, orders=30)
    db.analyze()
    fresh = build_mini_db(seed=13, orders=600)
    for name in ("orders", "lineitem"):
        db.load(name, fresh.execute(f"SELECT * FROM {name}"))
    return db


class TestAdvisor:
    def test_reanalyze_recommended_for_stale_breaching_tables(self):
        db = _stale_db()
        for __ in range(4):
            db.run("SELECT COUNT(*) FROM orders WHERE o_totalprice > 0",
                   use_plan_cache=False)
        recs = db.advisor.recommendations()
        reanalyze = [r for r in recs if r.kind == "reanalyze"]
        assert any(r.target == "orders" for r in reanalyze)
        # Breach pressure scales the score beyond bare staleness.
        orders = next(r for r in reanalyze if r.target == "orders")
        assert orders.details["breach_rate"] > 0

    def test_index_recommendation_from_hot_unindexed_column(self, db):
        for i in range(12):
            db.run(f"SELECT * FROM orders WHERE o_totalprice > {i * 50}")
        recs = db.advisor.recommendations()
        index = [r for r in recs if r.kind == "index"]
        assert any(r.target == "orders.o_totalprice" for r in index)
        probe = next(r for r in index
                     if r.target == "orders.o_totalprice").details
        assert probe["index_lookup_cost"] < probe["table_scan_cost"]

    def test_indexed_columns_never_recommended(self, db):
        for i in range(12):
            db.run(f"SELECT * FROM orders WHERE o_orderkey = {i + 1}")
        recs = db.advisor.recommendations()
        assert not any(r.kind == "index" and r.target == "orders.o_orderkey"
                       for r in recs)

    def test_determinism_same_history_same_bytes(self):
        """Two advisors over identical histories emit identical advice."""
        payloads = []
        for __ in range(2):
            db = build_mini_db(seed=13, orders=120)
            repo = WorkloadRepository(capacity=16)
            for i in range(10):
                _history(repo, "fp-scan", "SELECT ...", "aaaa",
                         touches=(("orders", "o_totalprice", "predicate"),
                                  ("lineitem", "l_quantity", "predicate")),
                         latency=0.004, breached=(i % 3 == 0))
            _history(repo, "fp-reg", "SELECT ...", "hhh1",
                     latency=0.010, runs=3)
            _history(repo, "fp-reg", "SELECT ...", "hhh2",
                     latency=0.040, runs=3)
            advisor = Advisor(repository=repo, catalog=db.catalog,
                              storage=db.storage,
                              plan_cache=db.plan_cache,
                              config=db.config)
            payloads.append(json.dumps(
                [r.to_dict() for r in advisor.recommendations()],
                sort_keys=True))
        assert payloads[0] == payloads[1]

    def test_apply_reanalyze_refreshes_stats_and_bumps_catalog(self):
        db = _stale_db()
        for __ in range(4):
            db.run("SELECT COUNT(*) FROM orders WHERE o_totalprice > 0",
                   use_plan_cache=False)
        version = db.catalog.version
        actions = db.advisor.apply(kinds=("reanalyze",))
        assert any(a["target"] == "orders" for a in actions)
        assert db.catalog.version > version
        stats = db.catalog.statistics("orders")
        assert stats.row_count == db.storage.heap("orders").row_count
        # Advice is consumed: a fresh pass no longer flags orders.
        assert not any(r.kind == "reanalyze" and r.target == "orders"
                       for r in db.advisor.recommendations())

    def test_apply_plan_regression_purges_cached_plans(self):
        db = build_mini_db(seed=19, orders=100)
        sql = "SELECT COUNT(*) FROM orders WHERE o_totalprice > 1"
        db.run(sql)  # populate the plan cache
        fingerprint = statement_fingerprint(sql)
        _history(db.workload, fingerprint, sql, "hhh1",
                 latency=0.010, runs=3)
        _history(db.workload, fingerprint, sql, "hhh2",
                 latency=0.050, runs=3)
        actions = db.advisor.apply(kinds=("plan_regression",))
        assert actions and "invalidated 1 cached plans" in \
            actions[0]["action"]
        assert not db.run(sql).plan_cache_hit  # recompiled
        assert db.workload.unresolved_regressions() == []

    def test_index_advice_is_never_auto_applied(self, db):
        before = {i.name for i in db.catalog.table("orders").indexes}
        db.advisor.apply()  # default kinds exclude "index"
        assert {i.name for i in db.catalog.table("orders").indexes} == before


# ---------------------------------------------------------------------------
# Database integration: auto-analyze hook, report, export surfaces
# ---------------------------------------------------------------------------

class TestDatabaseIntegration:
    def test_auto_analyze_hook_fires_on_interval(self):
        db = _stale_db()
        db.config.advisor_auto_analyze = True
        db.config.advisor_interval_statements = 4
        for __ in range(4):
            db.run("SELECT COUNT(*) FROM orders WHERE o_totalprice > 0",
                   use_plan_cache=False)
        assert db.metrics.count("advisor.applied.reanalyze") >= 1
        stats = db.catalog.statistics("orders")
        assert stats.row_count == db.storage.heap("orders").row_count

    def test_workload_tracking_can_be_disabled(self):
        db = build_mini_db(seed=23, orders=50)
        db.config.workload_tracking_enabled = False
        db.run("SELECT COUNT(*) FROM orders")
        assert len(db.workload) == 0

    def test_workload_report_round_trip(self, db):
        report = db.workload_report()
        assert report["repository"]["stats"]["recorded"] > 0
        assert isinstance(report["recommendations"], list)
        text = db.workload_report_text()
        assert "Workload intelligence" in text
        assert "fingerprints tracked" in text

    def test_hit_ratio_gauges_computed_at_export(self, db):
        sql = "SELECT COUNT(*) FROM customer"
        db.run(sql)
        db.run(sql)
        export = db.metrics.to_dict()
        assert 0.0 < export["gauges"]["plan_cache.hit_ratio"] <= 1.0
        assert "mdcache.hit_ratio" in export["gauges"]
        assert export["gauges"]["workload.fingerprints"] == \
            len(db.workload)
        prom = db.metrics_export()
        assert "repro_plan_cache_hit_ratio" in prom
        assert "repro_mdcache_hit_ratio" in prom
        assert "repro_workload_recorded_total" in prom

    def test_slow_query_log_carries_plan_hash(self, tmp_path):
        log = tmp_path / "slow.jsonl"
        db = build_mini_db(seed=29, orders=50)
        db.config.slow_query_log_path = str(log)
        db.config.slow_query_log_threshold_seconds = 0.0
        db.run("SELECT COUNT(*) FROM orders")
        record = json.loads(log.read_text().splitlines()[-1])
        assert record["plan_hash"]
        assert record["fingerprint"]

    def test_config_validation(self):
        for kwargs in ({"workload_repository_capacity": 0},
                       {"workload_index_min_usage": 0},
                       {"workload_regression_factor": 1.0},
                       {"workload_regression_min_samples": 0},
                       {"advisor_interval_statements": 0}):
            with pytest.raises(ReproError):
                Database(DatabaseConfig(**kwargs))


# ---------------------------------------------------------------------------
# run_suite seed threading
# ---------------------------------------------------------------------------

class TestSuiteSeed:
    def test_seed_lands_in_result_and_reseeds_injector(self):
        from repro.bench import run_suite

        injector = FaultInjector(seed=1)
        injector.fired["optimizer"] = 9
        db = build_mini_db(seed=31, orders=40)
        db.config.fault_injector = injector
        result = run_suite(db, {1: "SELECT COUNT(*) FROM orders"},
                           name="seeded", seed=77)
        assert result.seed == 77
        # reseed() zeroed the counters for a reproducible run.
        assert injector.fired.get("optimizer", 0) == 0

    def test_seed_defaults_to_none(self):
        from repro.bench import run_suite

        db = build_mini_db(seed=31, orders=40)
        result = run_suite(db, {1: "SELECT COUNT(*) FROM orders"},
                           name="unseeded")
        assert result.seed is None
