"""Schema-level invariants both workloads and paper artifacts rely on."""

import pytest

from repro.workloads.tpch.schema import TPCH_TABLES
from repro.workloads.tpcds.schema import TPCDS_TABLES


class TestTpchSchema:
    def test_eight_tables(self):
        assert len(TPCH_TABLES) == 8

    def test_lineitem_fk2_exists(self):
        # Listing 7's plan probes lineitem_fk2 (l_partkey); the Q17
        # reproduction depends on it.
        lineitem = TPCH_TABLES["lineitem"]
        index = next(i for i in lineitem.indexes
                     if i.name == "lineitem_fk2")
        assert index.column_names == ("l_partkey",)

    def test_every_table_has_primary_key(self):
        for table in TPCH_TABLES.values():
            assert table.primary_key is not None, table.name

    def test_fact_fk_indexes(self):
        orders = TPCH_TABLES["orders"]
        assert any(i.column_names == ("o_custkey",)
                   for i in orders.indexes)

    def test_composite_primary_keys(self):
        assert TPCH_TABLES["lineitem"].primary_key.column_names == \
            ("l_orderkey", "l_linenumber")
        assert TPCH_TABLES["partsupp"].primary_key.column_names == \
            ("ps_partkey", "ps_suppkey")


class TestTpcdsSchema:
    def test_seventeen_tables(self):
        assert len(TPCDS_TABLES) == 17

    def test_three_sales_channels_with_returns(self):
        for fact in ("store_sales", "catalog_sales", "web_sales"):
            assert fact in TPCDS_TABLES
        for returns in ("store_returns", "catalog_returns",
                        "web_returns"):
            assert returns in TPCDS_TABLES

    def test_q72_tables_present(self):
        # Listing 1's eleven table references resolve against this schema.
        for name in ("catalog_sales", "inventory", "warehouse", "item",
                     "customer_demographics", "household_demographics",
                     "date_dim", "promotion", "catalog_returns"):
            assert name in TPCDS_TABLES

    def test_dimensions_have_primary_keys(self):
        for name in ("date_dim", "item", "customer", "store",
                     "warehouse", "promotion"):
            assert TPCDS_TABLES[name].primary_key is not None

    def test_catalog_returns_pk_supports_q72_left_join(self):
        # Q72's LEFT JOIN probes (cr_order_number, cr_item_sk).
        pk = TPCDS_TABLES["catalog_returns"].primary_key
        assert pk.column_names == ("cr_order_number", "cr_item_sk")

    def test_fact_item_indexes_exist(self):
        for fact, index_name in (("store_sales", "ss_item_idx"),
                                 ("catalog_sales", "cs_item_idx"),
                                 ("web_sales", "ws_item_idx"),
                                 ("inventory", "inv_item_idx")):
            names = {i.name for i in TPCDS_TABLES[fact].indexes}
            assert index_name in names
