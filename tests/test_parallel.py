"""Morsel-driven parallel execution: identical results, governed aborts.

The referee for the parallel engine is the serial batch engine: for
every query in the equivalence corpus, any worker count must produce
*bit-identical* rows in the same order, on both optimizers and both
pool backends.  Governor bounds must hold inside workers (a deadline,
cancel, or memory abort mid-morsel surfaces as the same typed error a
serial run raises), and a statement with no parallel-safe operator
must run serial and record ``EXEC_NOT_PARALLEL_SAFE``.
"""

import time
from types import SimpleNamespace

import pytest

from repro import Database, DatabaseConfig
from repro.errors import (
    DeadlineExceededError,
    ExecutionError,
    ReproError,
    ResourceExhaustedError,
    StatementCancelledError,
)
from repro.executor.parallel import (
    ParallelContext,
    _decode_error,
    _encode_error,
    _pick_error,
)
from repro.governor import CancelToken, ExecutionGovernor
from repro.resilience import FallbackReason
from tests.conftest import build_mini_db
from tests.test_executor_equivalence import CORPUS


def parallel_config(**overrides) -> DatabaseConfig:
    """Small chunks + a low table floor so even the mini db has many
    morsels per scan and every pool code path actually runs."""
    options = dict(complex_query_threshold=3, batch_size=32,
                   parallel_min_table_rows=64)
    options.update(overrides)
    return DatabaseConfig(**options)


@pytest.fixture(scope="module")
def db():
    return build_mini_db(seed=37, orders=150, config=parallel_config())


class TestBitIdentity:
    """Parallel rows must equal serial rows exactly — same values, same
    order — because the merge replays the serial fold in chunk order."""

    @pytest.mark.parametrize("sql", CORPUS)
    def test_workers_4_matches_serial(self, db, sql):
        serial = db.run(sql, executor_mode="batch", use_plan_cache=False)
        par = db.run(sql, executor_mode="batch", use_plan_cache=False,
                     executor_workers=4)
        assert par.rows == serial.rows
        assert par.executor_mode == serial.executor_mode

    @pytest.mark.parametrize("sql", CORPUS)
    def test_both_optimizers(self, db, sql):
        for optimizer in ("mysql", "orca"):
            serial = db.run(sql, optimizer=optimizer,
                            executor_mode="batch", use_plan_cache=False)
            par = db.run(sql, optimizer=optimizer, executor_mode="batch",
                         use_plan_cache=False, executor_workers=4)
            assert par.rows == serial.rows, optimizer

    def test_worker_counts_agree(self, db):
        sql = ("SELECT o_status, COUNT(*), SUM(o_totalprice), "
               "AVG(o_totalprice) FROM orders WHERE o_totalprice > 500 "
               "GROUP BY o_status ORDER BY o_status")
        reference = db.run(sql, executor_mode="batch",
                           use_plan_cache=False).rows
        for workers in (2, 3, 4, 8):
            got = db.run(sql, executor_mode="batch", use_plan_cache=False,
                         executor_workers=workers).rows
            assert got == reference, workers

    def test_counters_match_across_worker_counts(self, db):
        sql = ("SELECT COUNT(*), SUM(o_totalprice) FROM orders "
               "WHERE o_totalprice > 500")
        db.storage.counters.reset()
        db.run(sql, executor_mode="batch", use_plan_cache=False)
        serial_counts = db.storage.counters.snapshot()
        db.storage.counters.reset()
        db.run(sql, executor_mode="batch", use_plan_cache=False,
               executor_workers=4)
        assert db.storage.counters.snapshot() == serial_counts


class TestThreadBackend:
    def test_thread_pool_matches_serial(self):
        db = build_mini_db(seed=37, orders=150, config=parallel_config(
            parallel_backend="thread"))
        sql = ("SELECT o_status, COUNT(*), SUM(o_totalprice) FROM orders "
               "GROUP BY o_status ORDER BY o_status")
        serial = db.run(sql, executor_mode="batch", use_plan_cache=False)
        par = db.run(sql, executor_mode="batch", use_plan_cache=False,
                     executor_workers=4)
        assert par.rows == serial.rows


class TestConfigValidation:
    def test_batch_size_floor(self):
        with pytest.raises(ReproError, match="batch_size"):
            DatabaseConfig(batch_size=0)

    def test_workers_floor(self):
        with pytest.raises(ReproError, match="executor_workers"):
            DatabaseConfig(executor_workers=0)

    def test_backend_choices(self):
        with pytest.raises(ReproError, match="parallel_backend"):
            DatabaseConfig(parallel_backend="greenlet")

    def test_min_table_rows_floor(self):
        with pytest.raises(ReproError, match="parallel_min_table_rows"):
            DatabaseConfig(parallel_min_table_rows=0)

    def test_per_statement_workers_validated(self, db):
        with pytest.raises(ReproError, match="executor_workers"):
            db.run("SELECT 1", executor_workers=0)

    def test_context_rejects_bad_backend(self):
        with pytest.raises(ValueError):
            ParallelContext(2, backend="greenlet")


class TestObservability:
    def test_morsel_metrics(self, db):
        before = db.metrics.count("executor.morsels")
        result = db.run(
            "SELECT COUNT(*) FROM orders WHERE o_totalprice > 500",
            executor_mode="batch", use_plan_cache=False,
            executor_workers=4)
        assert result.executor_mode == "batch"
        assert db.metrics.count("executor.morsels") > before
        assert db.metrics.count("executor.parallel_workers") >= 2

    def test_explain_analyze_reports_workers(self, db):
        text = db.explain_analyze(
            "SELECT COUNT(*), SUM(o_totalprice) FROM orders "
            "WHERE o_totalprice > 500",
            executor_mode="batch", executor_workers=4)
        assert "workers=4" in text

    def test_serial_explain_has_no_workers(self, db):
        text = db.explain_analyze(
            "SELECT COUNT(*) FROM orders WHERE o_totalprice > 500",
            executor_mode="batch")
        assert "workers=" not in text


class TestNotParallelSafe:
    def test_small_tables_record_fallback(self, db):
        # customer/part sit under parallel_min_table_rows, so a plain
        # scan query over them has no parallel-safe operator.
        sql = "SELECT c_name FROM customer WHERE c_acctbal > 0"
        before = db.fallback_log.count(
            FallbackReason.EXEC_NOT_PARALLEL_SAFE)
        db.run(sql, executor_mode="batch", use_plan_cache=False,
               executor_workers=4)
        assert db.fallback_log.count(
            FallbackReason.EXEC_NOT_PARALLEL_SAFE) == before + 1

    def test_parallel_run_does_not_record(self, db):
        sql = "SELECT COUNT(*) FROM orders WHERE o_totalprice > 500"
        before = db.fallback_log.count(
            FallbackReason.EXEC_NOT_PARALLEL_SAFE)
        db.run(sql, executor_mode="batch", use_plan_cache=False,
               executor_workers=4)
        assert db.fallback_log.count(
            FallbackReason.EXEC_NOT_PARALLEL_SAFE) == before

    def test_serial_run_never_records(self, db):
        sql = "SELECT c_name FROM customer WHERE c_acctbal > 0"
        before = db.fallback_log.count(
            FallbackReason.EXEC_NOT_PARALLEL_SAFE)
        db.run(sql, executor_mode="batch", use_plan_cache=False)
        assert db.fallback_log.count(
            FallbackReason.EXEC_NOT_PARALLEL_SAFE) == before


class TestGovernedAborts:
    """Bounds must hold *inside* workers and surface as the same typed
    errors serial execution raises — never a raw pickle/OS escape."""

    def test_memory_breach_mid_parallel_build(self):
        db = build_mini_db(seed=37, orders=150, config=parallel_config())
        # Non-key join columns force a hash join whose build side is a
        # full lineitem scan — far over the 2 KB cap.
        sql = ("SELECT COUNT(*) FROM lineitem l1 JOIN lineitem l2 "
               "ON l1.l_quantity = l2.l_quantity")
        with pytest.raises(ResourceExhaustedError):
            db.run(sql, executor_mode="batch", use_plan_cache=False,
                   executor_workers=4, memory_limit_bytes=2000)
        assert db.fallback_log.count(
            FallbackReason.RESOURCE_EXHAUSTED) >= 1

    def test_cancel_token_aborts_parallel_statement(self):
        db = build_mini_db(seed=37, orders=150, config=parallel_config())
        sql = ("SELECT o_status, COUNT(*) FROM orders "
               "WHERE o_totalprice > 0 GROUP BY o_status")
        token = CancelToken(cancel_after_checks=12, reason="test abort")
        with pytest.raises(StatementCancelledError):
            db.run(sql, executor_mode="batch", use_plan_cache=False,
                   executor_workers=4, cancel_token=token)
        assert db.fallback_log.count(
            FallbackReason.STATEMENT_CANCELLED) == 1

    def test_deadline_trips_inside_fork_worker(self):
        governor = ExecutionGovernor(timeout_seconds=0.005)
        runtime = SimpleNamespace(governor=governor)
        context = ParallelContext(2, backend="fork")

        def slow_task(index):
            time.sleep(0.02)
            return index

        with pytest.raises(DeadlineExceededError) as err:
            context._run_morsels(runtime, list(range(8)), slow_task, 2)
        assert err.value.stage == "parallel"

    def test_cancel_trips_inside_fork_worker(self):
        token = CancelToken(cancel_after_checks=2, reason="stop now")
        governor = ExecutionGovernor(cancel_token=token)
        runtime = SimpleNamespace(governor=governor)
        context = ParallelContext(2, backend="fork")
        with pytest.raises(StatementCancelledError) as err:
            context._run_morsels(runtime, list(range(8)),
                                 lambda index: index, 2)
        assert err.value.reason == "stop now"

    def test_worker_crash_surfaces_as_execution_error(self):
        runtime = SimpleNamespace(governor=None)
        context = ParallelContext(2, backend="fork")

        def crash(index):
            raise KeyError(f"morsel {index}")

        with pytest.raises(ExecutionError, match="KeyError"):
            context._run_morsels(runtime, list(range(8)), crash, 2)

    def test_thread_backend_propagates_governor_errors(self):
        token = CancelToken(cancel_after_checks=2)
        governor = ExecutionGovernor(cancel_token=token)
        runtime = SimpleNamespace(governor=governor)
        context = ParallelContext(2, backend="thread")
        with pytest.raises(StatementCancelledError):
            context._run_morsels(runtime, list(range(8)),
                                 lambda index: index, 2)


class TestErrorTransport:
    """Governor errors have multi-arg constructors; the fork pipe ships
    them as typed tuples and rebuilds the exact type in the parent."""

    def test_roundtrip_preserves_type_and_state(self):
        cases = [
            StatementCancelledError("user asked", "parallel"),
            DeadlineExceededError(1.5, 1.0, "parallel"),
            ResourceExhaustedError("hash_join_build", 4096, 1024),
            KeyError("boom"),
        ]
        decoded = [_decode_error(_encode_error(exc)) for exc in cases]
        assert isinstance(decoded[0], StatementCancelledError)
        assert decoded[0].reason == "user asked"
        assert isinstance(decoded[1], DeadlineExceededError)
        assert decoded[1].budget == 1.0
        assert isinstance(decoded[2], ResourceExhaustedError)
        assert decoded[2].operator == "hash_join_build"
        assert isinstance(decoded[3], ExecutionError)

    def test_priority_prefers_cancel_over_timeout(self):
        errors = [_encode_error(DeadlineExceededError(1.0, 1.0, None)),
                  _encode_error(StatementCancelledError("stop", None)),
                  _encode_error(KeyError("x"))]
        assert _pick_error(errors)[0] == "cancel"


class TestCrossProcessCancel:
    def test_shared_flag_visible_through_property(self):
        token = CancelToken()
        token.enable_cross_process()
        assert not token.cancelled
        # Simulate a child (or sibling) setting only the shared cell.
        token._shared.value = 1
        assert token.cancelled

    def test_cancel_sets_shared_cell(self):
        token = CancelToken()
        token.enable_cross_process()
        token.cancel("bye")
        assert token._shared.value == 1

    def test_enable_after_cancel_carries_state(self):
        token = CancelToken()
        token.cancel()
        token.enable_cross_process()
        assert token._shared.value == 1


class TestLowMemoryRetryStaysSerial:
    def test_hash_agg_breach_retries_serial(self):
        db = build_mini_db(seed=37, orders=150, config=parallel_config())
        # Orca plans this as a hash aggregate (the MySQL path prefers
        # sort+stream here), which is the one shape with a degradation
        # path: breach -> forced-stream retry, which must run serial.
        sql = ("SELECT l_orderkey, COUNT(*), SUM(l_quantity) "
               "FROM lineitem GROUP BY l_orderkey")
        assert "(hash)" in db.explain(sql, optimizer="orca")
        plain = db.run(sql, optimizer="orca", executor_mode="batch",
                       use_plan_cache=False)
        baseline = db.run(sql, optimizer="orca", executor_mode="batch",
                          use_plan_cache=False,
                          memory_limit_bytes=10 ** 9)
        limit = max(1000,
                    baseline.governor_stats["peak_tracked_bytes"] // 3)
        result = db.run(sql, optimizer="orca", executor_mode="batch",
                        use_plan_cache=False, executor_workers=4,
                        memory_limit_bytes=limit)
        assert result.low_memory_retry
        assert sorted(result.rows) == sorted(plain.rows)
