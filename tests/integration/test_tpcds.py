"""Integration: the TPC-DS suite agrees across the two optimizers.

The full 99-query sweep runs in the benchmarks; here a representative
subset (every hand-written flagship plus one query from each template
family) keeps the test suite fast while covering every query shape.
"""

import pytest

from repro import Database, DatabaseConfig
from repro.workloads.tpcds import TPCDS_QUERIES, load_tpcds

#: All hand-written flagships plus a slice of the template families.
SUBSET = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 17, 24, 31, 32, 41,
          58, 72, 81, 92)


@pytest.fixture(scope="module")
def db():
    database = Database(DatabaseConfig(complex_query_threshold=2))
    load_tpcds(database, scale=0.2, seed=7)
    return database


from repro.bench.harness import results_match


@pytest.mark.parametrize("number", SUBSET)
def test_query_results_match(db, number):
    sql = TPCDS_QUERIES[number]
    mysql_rows = db.execute(sql, optimizer="mysql")
    orca_rows = db.execute(sql, optimizer="orca")
    assert results_match(mysql_rows, orca_rows)


def test_suite_has_99_queries():
    assert sorted(TPCDS_QUERIES) == list(range(1, 100))


def test_q72_is_the_paper_snowflake(db):
    # Listing 1's structure: 11 table references, two LEFT OUTER JOINs.
    sql = TPCDS_QUERIES[72]
    assert sql.count("JOIN") >= 10
    assert sql.count("LEFT OUTER JOIN") == 2
    rows = db.execute(sql, optimizer="orca")
    assert isinstance(rows, list)


def test_q41_or_structure(db):
    # Section 6.2: the self-join condition appears in every OR branch.
    sql = TPCDS_QUERIES[41]
    assert sql.count("item.i_manufact = i1.i_manufact") == 4


def test_flagship_queries_nonempty(db):
    for number in (6, 9, 17, 41, 58):
        rows = db.execute(TPCDS_QUERIES[number], optimizer="orca")
        assert rows, f"Q{number} returned no rows"


def test_full_suite_sweep_tiny_scale():
    """Every one of the 99 queries agrees across optimizers (tiny data).

    The benchmark suite runs this at full mini scale; here a very small
    dataset keeps the complete-coverage sweep fast enough for tests.
    """
    database = Database(DatabaseConfig(complex_query_threshold=2))
    load_tpcds(database, scale=0.12, seed=19)
    mismatches = []
    for number in sorted(TPCDS_QUERIES):
        sql = TPCDS_QUERIES[number]
        mysql_rows = database.execute(sql, optimizer="mysql")
        orca_rows = database.execute(sql, optimizer="orca")
        if not results_match(mysql_rows, orca_rows):
            mismatches.append(number)
    assert not mismatches, mismatches
