"""Integration: every TPC-H query agrees across the two optimizers.

This is the correctness backbone of the reproduction — the paper's whole
evaluation assumes both optimizers' plans compute identical results.
"""

import pytest

from repro import Database, DatabaseConfig
from repro.workloads.tpch import TPCH_QUERIES, load_tpch


@pytest.fixture(scope="module")
def db():
    database = Database(DatabaseConfig(complex_query_threshold=3))
    load_tpch(database, scale=0.25, seed=42)
    return database


from repro.bench.harness import results_match


@pytest.mark.parametrize("number", sorted(TPCH_QUERIES))
def test_query_results_match(db, number):
    sql = TPCH_QUERIES[number]
    mysql_rows = db.execute(sql, optimizer="mysql")
    orca_rows = db.execute(sql, optimizer="orca")
    assert results_match(mysql_rows, orca_rows)


def test_workload_has_all_22_queries():
    assert sorted(TPCH_QUERIES) == list(range(1, 23))


def test_selected_queries_nonempty(db):
    # A guard against silently-degenerate data: the headline queries must
    # produce rows at this scale.
    for number in (1, 3, 4, 5, 6, 10, 12, 13, 14, 16, 18):
        rows = db.execute(TPCH_QUERIES[number], optimizer="mysql")
        assert rows, f"Q{number} returned no rows"


def test_routing_sends_complex_queries_to_orca(db):
    # At the paper's threshold of 3, Q5 (6 tables) goes to Orca and the
    # single-table Q1 and Q6 stay on MySQL (Section 6.1 ran with the
    # default threshold 3).
    assert db.run(TPCH_QUERIES[5]).optimizer_used == "orca"
    assert db.run(TPCH_QUERIES[6]).optimizer_used == "mysql"
