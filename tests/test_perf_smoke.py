"""Perf smoke: the optimize- and execute-stage savings hold on a tiny
TPC-H subset.

Deterministic counter-based assertions only — no wall-clock thresholds,
so the check cannot flake on slow CI machines.  Three multi-join TPC-H
queries (Q5, Q8, Q9 — each with at least five join units) must show:

* cost-bound pruning cuts cost-model evaluations by at least 25%
  against the unpruned search while choosing a plan of the same cost;
* the second identical run of every query is a plan-cache hit that
  returns the same rows.

The batch executor's counters are smoked the same way: a scan-heavy and
a join-heavy query must actually run batched (``executor.batches`` > 0)
through compiled expressions (``exec.compiled_exprs`` > 0) with results
identical to the row engine's.
"""

import pytest

from repro import Database, DatabaseConfig
from repro.observability import find_spans
from repro.workloads.tpch import TPCH_QUERIES, load_tpch

SMOKE_QUERIES = (5, 8, 9)
SCALE = 0.02


@pytest.fixture(scope="module")
def smoke_dbs():
    pruned = Database()
    load_tpch(pruned, scale=SCALE)
    unpruned = Database(DatabaseConfig(orca_cost_bound_pruning=False))
    load_tpch(unpruned, scale=SCALE)
    return pruned, unpruned


def _orca_counters(db, sql):
    result = db.run(sql, optimizer="orca", trace=True,
                    use_plan_cache=False)
    assert result.fallback_reason is None
    spans = find_spans(result.trace, "memo_search")
    evaluations = sum(s.attributes["cost_evaluations"] for s in spans)
    best_cost = sum(s.attributes["best_cost"] for s in spans)
    return result.rows, evaluations, best_cost


@pytest.mark.parametrize("number", SMOKE_QUERIES)
def test_pruning_cuts_evaluations_at_least_25_percent(smoke_dbs, number):
    pruned_db, unpruned_db = smoke_dbs
    sql = TPCH_QUERIES[number]
    rows_p, evals_p, cost_p = _orca_counters(pruned_db, sql)
    rows_u, evals_u, cost_u = _orca_counters(unpruned_db, sql)
    assert rows_p == rows_u
    # Soundness first: pruning never changes the chosen plan's cost ...
    assert cost_p == pytest.approx(cost_u)
    # ... and effectiveness second: at least a quarter of the cost-model
    # work disappears on these multi-join queries.
    assert evals_u > 0
    reduction = 1.0 - evals_p / evals_u
    assert reduction >= 0.25, (
        f"Q{number}: only {100 * reduction:.1f}% fewer evaluations "
        f"({evals_u} -> {evals_p})")


@pytest.mark.parametrize("number", SMOKE_QUERIES)
def test_second_run_is_a_plan_cache_hit(smoke_dbs, number):
    pruned_db, __ = smoke_dbs
    sql = TPCH_QUERIES[number]
    first = pruned_db.run(sql)
    second = pruned_db.run(sql)
    assert not first.plan_cache_hit or first.rows == second.rows
    assert second.plan_cache_hit
    assert second.rows == first.rows
    assert second.optimizer_used == first.optimizer_used


#: Scan-heavy (Q1: lineitem scan + wide aggregation) and join-heavy
#: (Q10: four-way hash join under Orca) batch-engine smoke queries.
BATCH_SMOKE_QUERIES = (1, 10)


@pytest.mark.parametrize("number", BATCH_SMOKE_QUERIES)
def test_batch_engine_runs_with_live_counters(smoke_dbs, number):
    db, __ = smoke_dbs
    sql = TPCH_QUERIES[number]
    row = db.run(sql, optimizer="orca", executor_mode="row")
    before_batches = db.metrics.count("executor.batches")
    before_rows = db.metrics.count("executor.batch_rows")
    before_exprs = db.metrics.count("exec.compiled_exprs")
    batch = db.run(sql, optimizer="orca", executor_mode="batch")
    # The statement really took the batch path, counted its work ...
    assert batch.executor_mode == "batch"
    assert db.metrics.count("executor.batches") > before_batches
    assert db.metrics.count("executor.batch_rows") > before_rows
    assert db.metrics.count("exec.compiled_exprs") > before_exprs
    # ... and produced the row engine's exact result multiset.
    assert sorted(map(repr, batch.rows)) == sorted(map(repr, row.rows))


@pytest.mark.parametrize("number", SMOKE_QUERIES)
def test_plan_quality_counters_advance(smoke_dbs, number):
    """Every executed statement feeds the plan-quality loop: the
    ``planq.*`` counters advance and the per-statement snapshot carries
    a finite Q-error for every plan node."""
    db, __ = smoke_dbs
    sql = TPCH_QUERIES[number]
    before = db.metrics.count("planq.statements")
    result = db.run(sql)
    assert db.metrics.count("planq.statements") == before + 1
    quality = result.plan_quality
    assert quality is not None and quality.nodes
    assert quality.root_q >= 1.0
    assert quality.max_q >= max(quality.root_q, 1.0)
    histogram = db.metrics.histogram("planq.max_q")
    assert histogram is not None and histogram.count >= 1
    assert histogram.max >= quality.max_q or histogram.count > 1


def test_plan_quality_export_surfaces(smoke_dbs):
    """After a workload the quality aggregates are exportable: the
    ledger holds entries and the Prometheus text carries planq series."""
    db, __ = smoke_dbs
    db.run(TPCH_QUERIES[SMOKE_QUERIES[0]])
    assert len(db.misestimation_ledger) >= 1
    report = db.plan_quality_report()
    assert report["worst_fingerprints"]
    export = db.metrics_export()
    assert "repro_planq_statements_total" in export
    assert "repro_planq_max_q_count" in export


# -- zone maps and morsel parallelism -----------------------------------------------


def test_zone_maps_skip_chunks_on_selective_predicate():
    """A date-clustered table with a selective range predicate must
    prune most chunks via zone maps — counter-based, no wall clock."""
    import datetime

    from repro.catalog import Column, Index, TableSchema
    from repro.mysql_types import MySQLType

    db = Database(DatabaseConfig(batch_size=64))
    db.create_table(TableSchema("events", [
        Column.of("e_id", MySQLType.LONGLONG, nullable=False),
        Column.of("e_day", MySQLType.DATE, nullable=False),
        Column.of("e_amount", MySQLType.DOUBLE, nullable=False),
    ], [Index("PRIMARY", ("e_id",), primary=True)]))
    start = datetime.date(2020, 1, 1)
    # Insertion-ordered by day, as an append-only event table would be.
    db.load("events", [
        (i, start + datetime.timedelta(days=i // 8), float(i % 100))
        for i in range(2048)])
    db.analyze()
    db.storage.counters.reset()
    result = db.run(
        "SELECT COUNT(*), SUM(e_amount) FROM events "
        "WHERE e_day >= DATE '2020-01-01' AND e_day < DATE '2020-01-08'",
        use_plan_cache=False)
    assert result.rows[0][0] == 56
    skipped = db.storage.counters.chunks_skipped
    assert skipped > 0
    # 2048 rows / 64 per chunk = 32 chunks; the week of data lives in
    # the first chunk, so nearly everything is pruned.
    assert skipped >= 28
    assert db.metrics.count("storage.chunks_skipped") == skipped


@pytest.mark.parametrize("mode", ["row", "batch"])
@pytest.mark.parametrize("predicate,expected_rows,min_skipped", [
    ("e_id IN (3, 1000)", 2, 28),
    # BETWEEN targets the unindexed column: a PK range would take an
    # index scan and never consult the zone maps.
    ("e_amount BETWEEN 100.0 AND 160.0", 121, 28),
    ("e_id NOT BETWEEN 64 AND 1983", 128, 28),
    ("e_amount NOT IN (5.0)", 2047, 0),  # no constant chunk: all kept
])
def test_zone_maps_cover_in_and_between(mode, predicate,
                                        expected_rows, min_skipped):
    """IN-list and BETWEEN conjuncts (both polarities) feed the zone
    maps on the row and batch scan paths alike."""
    db = Database(DatabaseConfig(batch_size=64))
    from repro.catalog import Column, Index, TableSchema
    from repro.mysql_types import MySQLType

    db.create_table(TableSchema("points", [
        Column.of("e_id", MySQLType.LONGLONG, nullable=False),
        Column.of("e_amount", MySQLType.DOUBLE, nullable=False),
    ], [Index("PRIMARY", ("e_id",), primary=True)]))
    db.load("points", [(i, i * 0.5) for i in range(2048)])
    db.analyze()
    db.storage.counters.reset()
    result = db.run(f"SELECT COUNT(*) FROM points WHERE {predicate}",
                    use_plan_cache=False, executor_mode=mode)
    assert result.rows[0][0] == expected_rows
    assert db.storage.counters.chunks_skipped >= min_skipped


def test_wide_joins_stay_off_the_exponential_dp_path():
    """Counter-based large-join gate: above ``orca_lindp_threshold``
    the adaptive selector must route every component to a polynomial
    strategy — the ``orca.join_strategy.dp`` counter stays frozen while
    the polynomial counters advance."""
    from repro.workloads.joins import load_topology, make_topology

    db = Database(DatabaseConfig(complex_query_threshold=3,
                                 plan_cache_enabled=False))
    cutoff = db.config.orca_lindp_threshold
    for kind, relations in (("chain", cutoff + 4), ("star", 30)):
        load_topology(db, make_topology(kind, relations, scale=0.25))
    dp_before = db.metrics.count("orca.join_strategy.dp")
    for kind, relations in (("chain", cutoff + 4), ("star", 30)):
        topology = make_topology(kind, relations, scale=0.25)
        result = db.run(topology.query, optimizer="orca",
                        use_plan_cache=False)
        assert result.optimizer_used == "orca"
        assert result.fallback_reason is None
    assert db.metrics.count("orca.join_strategy.dp") == dp_before
    assert (db.metrics.count("orca.join_strategy.lindp")
            + db.metrics.count("orca.join_strategy.goo")) >= 2


def test_parallel_scan_dispatches_more_morsels_than_workers():
    db = Database(DatabaseConfig(batch_size=32,
                                 parallel_min_table_rows=64))
    load_tpch(db, scale=SCALE)
    workers = 4
    before = db.metrics.count("executor.morsels")
    result = db.run(
        "SELECT COUNT(*), SUM(l_quantity) FROM lineitem "
        "WHERE l_quantity > 0",
        use_plan_cache=False, executor_workers=workers)
    assert result.executor_mode == "batch"
    morsels = db.metrics.count("executor.morsels") - before
    # Morsel-driven means many more work units than workers, so the
    # pool load-balances instead of running one static partition each.
    assert morsels > workers
    assert db.metrics.count("executor.parallel_workers") >= 2
