"""End-to-end advisor smoke: the full drift story on TPC-H.

One scenario run (small scale, seeded) must show the whole loop the CI
job guards: statistics go stale -> worst-node Q-errors breach -> the
advisor recommends (and, via the opt-in ``advisor_auto_analyze`` hook,
applies) re-ANALYZE -> Q-errors recover; a mid-workload optimizer
reroute is flagged as a plan regression and its cached plans purged.

The scenario itself lives in :mod:`repro.bench.drift`; the committed
``BENCH_advisor`` artifact runs the same code at bench scale.
"""

import pytest

from repro.bench.drift import run_drift_scenario


@pytest.fixture(scope="module")
def payload():
    # Scale 0.35: large enough that the staged reroute's cross-product
    # plan clearly dominates the detour's compile time, small enough to
    # finish in seconds.
    return run_drift_scenario(scale=0.35, seed=42, runs_per_query=4,
                              auto_analyze=True)


class TestDriftRecovery:
    def test_drift_actually_breaches(self, payload):
        breached = payload["recovery"]["breached_queries"]
        assert len(breached) >= 2, (
            "stale statistics produced no clear Q-error breaches; "
            "the scenario is not exercising the advisor")

    def test_auto_analyze_hook_applied_reanalyze(self, payload):
        assert payload["auto_applied"] >= 1

    def test_breached_queries_recover_after_reanalyze(self, payload):
        for row in payload["recovery"]["breached_queries"]:
            assert row["recovered_max_q"] < row["stale_max_q"], (
                f"Q{row['query']} did not recover: "
                f"stale {row['stale_max_q']:.1f} -> "
                f"recovered {row['recovered_max_q']:.1f}")

    def test_recovered_latency_near_baseline(self, payload):
        # Loose tier-1 gate on summed per-query *minima* — the noise
        # floor, robust to load spikes from neighbouring tests (at this
        # scale medians/p95s sit at single milliseconds; the bench
        # artifact gates p95 at 1.2x at full scale).
        baseline = payload["baseline"]["suite_min_seconds"]
        recovered = payload["recovered"]["suite_min_seconds"]
        assert recovered <= 1.5 * baseline


class TestRegressionHygiene:
    def test_reroute_flagged_as_plan_regression(self, payload):
        flagged = payload["regression_staging"]["flagged"]
        assert len(flagged) == 1
        assert flagged[0]["factor"] > 1.5
        assert flagged[0]["from_hash"] != flagged[0]["to_hash"]

    def test_regression_recommended_and_purged(self, payload):
        assert "plan_regression" in payload["recommendation_kinds"]
        purges = [a for a in payload["actions"]
                  if a["kind"] == "plan_regression"]
        assert purges and "invalidated" in purges[0]["action"]


class TestAdvice:
    def test_index_advice_for_hot_unindexed_columns(self, payload):
        index_recs = [r for r in payload["recommendations"]
                      if r["kind"] == "index"]
        assert index_recs, "no index advice on the drifting mix"
        # The mix filters heavily on unindexed columns; at least one
        # must surface with a favourable what-if cost delta.
        for rec in index_recs:
            details = rec["details"]
            assert details["index_lookup_cost"] < \
                details["table_scan_cost"]
