"""Node-level tests for executor plan operators."""

import pytest

from repro.sql import ast
from repro.executor.plan import (
    AggregateNode,
    AggregateStrategy,
    AggSpec,
    ExecutionRuntime,
    HashJoinNode,
    JoinKind,
    LimitNode,
    NestedLoopJoinNode,
    PlanNode,
    sort_rows,
)


class _RowsNode(PlanNode):
    """Test helper: emit fixed rows into one context slot."""

    def __init__(self, entry_id, rows):
        super().__init__()
        self.entry_id = entry_id
        self.rows_data = rows

    def produced_entries(self):
        return [self.entry_id]

    def run(self, runtime):
        for row in self.rows_data:
            runtime.ctx[self.entry_id] = row
            yield

    def label(self):
        return "rows"


def read(entry_id, position):
    def fn(ctx):
        row = ctx[entry_id]
        return row[position] if row is not None else None
    return fn


def run_collect(node, slots, n_ctx=4):
    runtime = ExecutionRuntime(storage=None, context_size=n_ctx)
    out = []
    for __ in node.run(runtime):
        out.append(tuple(runtime.ctx[s][0] if runtime.ctx[s] is not None
                         else None for s in slots))
    return out


class TestSortRows:
    def test_nulls_first_ascending(self):
        captured = [((3,), ("a",)), ((None,), ("b",)), ((1,), ("c",))]
        sort_rows(captured, [ast.OrderItem(ast.Literal(0), False)])
        assert [c[1][0] for c in captured] == ["b", "c", "a"]

    def test_nulls_last_descending(self):
        captured = [((3,), ("a",)), ((None,), ("b",)), ((1,), ("c",))]
        sort_rows(captured, [ast.OrderItem(ast.Literal(0), True)])
        assert [c[1][0] for c in captured] == ["a", "c", "b"]

    def test_multi_key_mixed_directions(self):
        captured = [((1, "x"), ("r1",)), ((1, "a"), ("r2",)),
                    ((2, "a"), ("r3",))]
        sort_rows(captured, [ast.OrderItem(ast.Literal(0), True),
                             ast.OrderItem(ast.Literal(0), False)])
        assert [c[1][0] for c in captured] == ["r3", "r2", "r1"]

    def test_stable_for_ties(self):
        captured = [((1,), ("first",)), ((1,), ("second",))]
        sort_rows(captured, [ast.OrderItem(ast.Literal(0), False)])
        assert [c[1][0] for c in captured] == ["first", "second"]


class TestHashJoinNode:
    def _join(self, kind, probe_rows, build_rows):
        probe = _RowsNode(0, probe_rows)
        build = _RowsNode(1, build_rows)
        return HashJoinNode(
            probe, build, kind,
            [ast.ColumnRef(None, "k", 0, 0)], [read(0, 0)],
            [ast.ColumnRef(None, "k", 1, 0)], [read(1, 0)],
            [], lambda ctx: True)

    def test_inner_join(self):
        node = self._join(JoinKind.INNER,
                          [(1,), (2,), (3,)], [(2,), (2,), (4,)])
        assert run_collect(node, [0, 1]) == [(2, 2), (2, 2)]

    def test_left_join_null_fills(self):
        node = self._join(JoinKind.LEFT, [(1,), (2,)], [(2,)])
        assert run_collect(node, [0, 1]) == [(1, None), (2, 2)]

    def test_semi_join_emits_once(self):
        node = self._join(JoinKind.SEMI, [(2,), (5,)], [(2,), (2,), (2,)])
        assert run_collect(node, [0]) == [(2,)]

    def test_anti_join(self):
        node = self._join(JoinKind.ANTI, [(1,), (2,)], [(2,)])
        assert run_collect(node, [0]) == [(1,)]

    def test_null_keys_never_match(self):
        node = self._join(JoinKind.INNER, [(None,), (1,)],
                          [(None,), (1,)])
        assert run_collect(node, [0, 1]) == [(1, 1)]

    def test_null_probe_key_still_left_joins(self):
        node = self._join(JoinKind.LEFT, [(None,)], [(None,)])
        assert run_collect(node, [0, 1]) == [(None, None)]


class TestNestedLoopJoinNode:
    def _join(self, kind, outer_rows, inner_rows, condition=None):
        outer = _RowsNode(0, outer_rows)
        inner = _RowsNode(1, inner_rows)
        fn = condition or (lambda ctx: ctx[0][0] == ctx[1][0])
        return NestedLoopJoinNode(outer, inner, kind, [], fn)

    def test_inner(self):
        node = self._join(JoinKind.INNER, [(1,), (2,)], [(2,), (3,)])
        assert run_collect(node, [0, 1]) == [(2, 2)]

    def test_left(self):
        node = self._join(JoinKind.LEFT, [(1,), (2,)], [(2,)])
        assert run_collect(node, [0, 1]) == [(1, None), (2, 2)]

    def test_semi_stops_at_first_match(self):
        node = self._join(JoinKind.SEMI, [(1,)], [(1,), (1,), (1,)])
        assert run_collect(node, [0]) == [(1,)]

    def test_anti(self):
        node = self._join(JoinKind.ANTI, [(1,), (9,)], [(1,)])
        assert run_collect(node, [0]) == [(9,)]

    def test_unknown_condition_is_no_match(self):
        node = self._join(JoinKind.INNER, [(1,)], [(1,)],
                          condition=lambda ctx: None)
        assert run_collect(node, [0]) == []


class TestAggregateNode:
    def _agg(self, strategy, rows):
        child = _RowsNode(0, rows)
        spec = AggSpec(ast.AggFunc.SUM, read(0, 1), False, False)
        count = AggSpec(ast.AggFunc.COUNT, None, False, True)
        return AggregateNode(child, [read(0, 0)], [], [spec, count],
                             strategy, output_entry_id=1)

    def _collect(self, node):
        runtime = ExecutionRuntime(storage=None, context_size=2)
        out = []
        for __ in node.run(runtime):
            out.append(runtime.ctx[1])
        return out

    def test_hash_groups(self):
        node = self._agg(AggregateStrategy.HASH,
                         [("a", 1), ("b", 2), ("a", 3)])
        assert sorted(self._collect(node)) == \
            [("a", 4, 2), ("b", 2, 1)]

    def test_stream_requires_grouped_input(self):
        node = self._agg(AggregateStrategy.STREAM,
                         [("a", 1), ("a", 3), ("b", 2)])
        assert self._collect(node) == [("a", 4, 2), ("b", 2, 1)]

    def test_sum_skips_nulls(self):
        node = self._agg(AggregateStrategy.HASH,
                         [("a", None), ("a", 5)])
        assert self._collect(node) == [("a", 5, 2)]

    def test_scalar_agg_on_empty_input(self):
        child = _RowsNode(0, [])
        spec = AggSpec(ast.AggFunc.SUM, read(0, 0), False, False)
        node = AggregateNode(child, [], [], [spec],
                             AggregateStrategy.HASH, output_entry_id=1)
        assert self._collect(node) == [(None,)]


class TestLimitNode:
    def test_limit(self):
        node = LimitNode(_RowsNode(0, [(i,) for i in range(10)]), 3)
        assert run_collect(node, [0]) == [(0,), (1,), (2,)]

    def test_offset(self):
        node = LimitNode(_RowsNode(0, [(i,) for i in range(10)]), 2,
                         offset=4)
        assert run_collect(node, [0]) == [(4,), (5,)]

    def test_limit_stops_pulling(self):
        pulled = []

        class Counting(_RowsNode):
            def run(self, runtime):
                for row in self.rows_data:
                    pulled.append(row)
                    runtime.ctx[self.entry_id] = row
                    yield

        node = LimitNode(Counting(0, [(i,) for i in range(100)]), 2)
        run_collect(node, [0])
        assert len(pulled) <= 3
