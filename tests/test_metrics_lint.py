"""Metric-name lint: every metric written in the source must be in
the DESIGN.md Appendix A catalog.

The lint walks ``src/repro`` for literal first arguments to
``inc(`` / ``observe(`` / ``set_gauge(`` / ``register_gauge(`` calls
(including f-strings, whose ``{placeholder}`` segments become
wildcards) and fails when a name is absent from the catalog — so the
catalog cannot silently rot as instrumentation grows.
"""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"
DESIGN = REPO / "DESIGN.md"

APPENDIX_HEADER = "## Appendix A. Metric-name catalog"

#: A metric write with a literal (possibly f-string) name.  ``\s*``
#: crosses newlines, so wrapped calls still match.
WRITE_CALL = re.compile(
    r"""\.(?:inc|observe|set_gauge|register_gauge)\(\s*(f?)(["'])"""
    r"""([a-z0-9_.{}\[\]'"]*?)\2""",
    re.IGNORECASE)

#: Backticked metric names inside the appendix tables.
CATALOG_NAME = re.compile(r"`([a-z0-9_.]+(?:\{[a-z_]+\})?[a-z0-9_.]*)`")

PLACEHOLDER = re.compile(r"\{[^{}]*\}")


def _used_names():
    """(name, file:line) pairs for every literal metric write in src."""
    out = []
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        for match in WRITE_CALL.finditer(text):
            name = PLACEHOLDER.sub("*", match.group(3))
            if not name or name == "*":
                continue  # a pure-variable name is not lintable
            line = text.count("\n", 0, match.start()) + 1
            out.append((name, f"{path.relative_to(REPO)}:{line}"))
    return out


def _catalog_patterns():
    """Documented names from Appendix A, as compiled regexes
    (``{placeholder}`` segments match any non-dot run)."""
    text = DESIGN.read_text(encoding="utf-8")
    assert APPENDIX_HEADER in text, \
        "DESIGN.md lost its metric-name catalog appendix"
    appendix = text.split(APPENDIX_HEADER, 1)[1]
    patterns = {}
    for line in appendix.splitlines():
        # Catalog entries are the *name column* (first cell) of the
        # tables; backticked values elsewhere in a row are examples.
        if not line.startswith("| `"):
            continue
        match = CATALOG_NAME.search(line.split("|")[1])
        if match is None:
            continue
        normalized = PLACEHOLDER.sub("*", match.group(1))
        regex = "".join("[a-z0-9_]+" if part == "*"
                        else re.escape(part)
                        for part in re.split(r"(\*)", normalized))
        patterns[normalized] = re.compile(regex + r"\Z")
    return patterns


def test_lint_finds_the_known_write_sites():
    used = _used_names()
    names = {name for name, __ in used}
    # Sanity anchor: the lint must actually see the core sites (a
    # regex regression would otherwise pass vacuously).
    for expected in ("statements.total", "detour.entered",
                    "executor.worker_morsels", "flight.records",
                    "fallback.*", "plan_cache.hit_ratio",
                    "workload.fingerprints"):
        assert expected in names, \
            f"lint regex no longer finds {expected!r} writes"
    assert len(used) >= 50


def test_every_written_metric_is_documented():
    patterns = _catalog_patterns()
    undocumented = []
    for name, location in _used_names():
        # A wildcarded write site matches its catalog family by
        # normalized name; a literal name may also fall under one.
        if name not in patterns and not any(
                pattern.fullmatch(name)
                for pattern in patterns.values()):
            undocumented.append(f"{name}  ({location})")
    assert not undocumented, (
        "metric names written in src but missing from DESIGN.md "
        "Appendix A:\n  " + "\n  ".join(sorted(set(undocumented))))


def test_documented_exact_names_are_real():
    """The reverse direction, for exact (non-wildcard) names: a
    documented metric no code writes is a stale catalog row."""
    used = {name for name, __ in _used_names()}
    stale = []
    for normalized in _catalog_patterns():
        if "*" in normalized:
            continue
        if normalized not in used:
            stale.append(normalized)
    assert not stale, (
        "DESIGN.md Appendix A documents metrics no source writes:\n  "
        + "\n  ".join(sorted(stale)))
