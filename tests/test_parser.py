"""Tests for the SQL parser."""

import datetime

import pytest

from repro.errors import ParseError, UnsupportedSqlError
from repro.sql import ast
from repro.sql.parser import parse_statement


class TestSelectCore:
    def test_simple_select(self):
        stmt = parse_statement("SELECT a, b FROM t")
        assert len(stmt.items) == 2
        assert isinstance(stmt.from_tables[0], ast.BaseTableRef)

    def test_select_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)

    def test_qualified_star(self):
        stmt = parse_statement("SELECT t.* FROM t")
        assert stmt.items[0].expr.table == "t"

    def test_aliases(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t z")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_tables[0].alias == "z"

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_group_by_having(self):
        stmt = parse_statement(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2")
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_by_directions(self):
        stmt = parse_statement("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        assert [o.descending for o in stmt.order_by] == [True, False, False]

    def test_limit_offset(self):
        stmt = parse_statement("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert stmt.limit == 10 and stmt.offset == 5

    def test_mysql_limit_comma(self):
        stmt = parse_statement("SELECT a FROM t LIMIT 5, 10")
        assert stmt.limit == 10 and stmt.offset == 5


class TestJoins:
    def test_comma_join(self):
        stmt = parse_statement("SELECT * FROM a, b, c")
        assert len(stmt.from_tables) == 3

    def test_inner_join_on(self):
        stmt = parse_statement("SELECT * FROM a JOIN b ON a.x = b.y")
        join = stmt.from_tables[0]
        assert isinstance(join, ast.JoinRef)
        assert join.join_type is ast.JoinType.INNER
        assert join.condition is not None

    def test_left_outer_join(self):
        stmt = parse_statement(
            "SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y")
        assert stmt.from_tables[0].join_type is ast.JoinType.LEFT

    def test_left_join_without_outer(self):
        stmt = parse_statement("SELECT * FROM a LEFT JOIN b ON a.x = b.y")
        assert stmt.from_tables[0].join_type is ast.JoinType.LEFT

    def test_join_chain_is_left_assoc(self):
        stmt = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y")
        outer = stmt.from_tables[0]
        assert isinstance(outer.left, ast.JoinRef)
        assert isinstance(outer.right, ast.BaseTableRef)

    def test_right_join_rejected(self):
        with pytest.raises(UnsupportedSqlError):
            parse_statement("SELECT * FROM a RIGHT JOIN b ON a.x = b.y")

    def test_join_requires_on(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT * FROM a JOIN b WHERE 1 = 1")

    def test_derived_table(self):
        stmt = parse_statement(
            "SELECT * FROM (SELECT a FROM t) AS d (col)")
        derived = stmt.from_tables[0]
        assert isinstance(derived, ast.DerivedTableRef)
        assert derived.column_names == ["col"]

    def test_schema_qualified_table(self):
        stmt = parse_statement("SELECT * FROM tpch.lineitem")
        assert stmt.from_tables[0].name == "lineitem"


class TestExpressions:
    def where(self, condition):
        return parse_statement(f"SELECT a FROM t WHERE {condition}").where

    def test_precedence_or_and(self):
        expr = self.where("a = 1 OR b = 2 AND c = 3")
        assert expr.op is ast.BinOp.OR
        assert expr.right.op is ast.BinOp.AND

    def test_arithmetic_precedence(self):
        expr = self.where("a + b * c = 7")
        assert expr.left.op is ast.BinOp.ADD
        assert expr.left.right.op is ast.BinOp.MUL

    def test_between(self):
        expr = self.where("a BETWEEN 1 AND 10")
        assert isinstance(expr, ast.BetweenExpr)

    def test_not_between(self):
        expr = self.where("a NOT BETWEEN 1 AND 10")
        assert expr.negated

    def test_like_and_not_like(self):
        assert isinstance(self.where("a LIKE '%x%'"), ast.LikeExpr)
        assert self.where("a NOT LIKE '%x%'").negated

    def test_in_list(self):
        expr = self.where("a IN (1, 2, 3)")
        assert isinstance(expr, ast.InListExpr)
        assert len(expr.items) == 3

    def test_in_subquery(self):
        expr = self.where("a IN (SELECT b FROM u)")
        assert isinstance(expr, ast.InSubqueryExpr)

    def test_not_in_subquery(self):
        expr = self.where("a NOT IN (SELECT b FROM u)")
        assert expr.negated

    def test_exists(self):
        expr = self.where("EXISTS (SELECT * FROM u)")
        assert isinstance(expr, ast.ExistsExpr)

    def test_not_exists(self):
        expr = self.where("NOT EXISTS (SELECT * FROM u)")
        assert isinstance(expr, ast.NotExpr)
        assert isinstance(expr.operand, ast.ExistsExpr)

    def test_is_null(self):
        assert isinstance(self.where("a IS NULL"), ast.IsNullExpr)
        assert self.where("a IS NOT NULL").negated

    def test_scalar_subquery(self):
        expr = self.where("a > (SELECT AVG(b) FROM u)")
        assert isinstance(expr.right, ast.ScalarSubquery)

    def test_date_literal(self):
        expr = self.where("d >= DATE '1995-01-01'")
        assert expr.right.value == datetime.date(1995, 1, 1)

    def test_interval(self):
        expr = self.where("d < DATE '1995-01-01' + INTERVAL '3' MONTH")
        interval = expr.right.right
        assert isinstance(interval, ast.IntervalLiteral)
        assert interval.interval.months == 3

    def test_case_searched(self):
        stmt = parse_statement(
            "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t")
        expr = stmt.items[0].expr
        assert isinstance(expr, ast.CaseExpr)
        assert expr.else_value is not None

    def test_case_simple_normalised(self):
        stmt = parse_statement(
            "SELECT CASE a WHEN 1 THEN 'x' END FROM t")
        condition = stmt.items[0].expr.whens[0][0]
        assert condition.op is ast.BinOp.EQ

    def test_cast(self):
        stmt = parse_statement("SELECT CAST(a AS DATE) FROM t")
        assert stmt.items[0].expr.name == "CAST_DATE"

    def test_extract(self):
        stmt = parse_statement("SELECT EXTRACT(YEAR FROM d) FROM t")
        assert stmt.items[0].expr.name == "EXTRACT_YEAR"

    def test_concat_operator(self):
        stmt = parse_statement("SELECT a || b FROM t")
        assert stmt.items[0].expr.name == "CONCAT"


class TestAggregatesAndWindows:
    def test_count_star(self):
        stmt = parse_statement("SELECT COUNT(*) FROM t")
        agg = stmt.items[0].expr
        assert agg.func is ast.AggFunc.COUNT and agg.star

    def test_count_distinct(self):
        stmt = parse_statement("SELECT COUNT(DISTINCT a) FROM t")
        assert stmt.items[0].expr.distinct

    def test_all_aggregates(self):
        stmt = parse_statement(
            "SELECT SUM(a), AVG(a), MIN(a), MAX(a), STDDEV(a) FROM t")
        funcs = [item.expr.func for item in stmt.items]
        assert funcs == [ast.AggFunc.SUM, ast.AggFunc.AVG, ast.AggFunc.MIN,
                         ast.AggFunc.MAX, ast.AggFunc.STDDEV]

    def test_rank_over(self):
        stmt = parse_statement(
            "SELECT RANK() OVER (PARTITION BY a ORDER BY b DESC) FROM t")
        call = stmt.items[0].expr
        assert isinstance(call, ast.WindowCall)
        assert call.func == "RANK"
        assert len(call.partition_by) == 1
        assert call.order_by[0].descending

    def test_sum_over(self):
        stmt = parse_statement(
            "SELECT SUM(x) OVER (PARTITION BY a) FROM t")
        call = stmt.items[0].expr
        assert isinstance(call, ast.WindowCall)
        assert call.func == "SUM"

    def test_grouping_single_column(self):
        stmt = parse_statement("SELECT GROUPING(a) FROM t GROUP BY a")
        assert isinstance(stmt.items[0].expr, ast.GroupingCall)

    def test_grouping_multi_column_rejected(self):
        # Section 4.1: "GROUPING functions can only have one column".
        with pytest.raises(UnsupportedSqlError):
            parse_statement("SELECT GROUPING(a, b) FROM t GROUP BY a, b")


class TestSetOpsAndCtes:
    def test_union_all(self):
        stmt = parse_statement("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert stmt.set_ops[0][0] is ast.SetOp.UNION_ALL

    def test_union_distinct(self):
        stmt = parse_statement("SELECT a FROM t UNION SELECT b FROM u")
        assert stmt.set_ops[0][0] is ast.SetOp.UNION

    def test_intersect_rejected_like_mysql(self):
        # Section 6.2: MySQL does not support INTERSECT/EXCEPT.
        with pytest.raises(UnsupportedSqlError):
            parse_statement("SELECT a FROM t INTERSECT SELECT b FROM u")

    def test_except_rejected_like_mysql(self):
        with pytest.raises(UnsupportedSqlError):
            parse_statement("SELECT a FROM t EXCEPT SELECT b FROM u")

    def test_cte(self):
        stmt = parse_statement(
            "WITH c AS (SELECT a FROM t) SELECT * FROM c")
        assert stmt.ctes[0].name == "c"

    def test_cte_with_columns(self):
        stmt = parse_statement(
            "WITH c (x, y) AS (SELECT a, b FROM t) SELECT * FROM c")
        assert stmt.ctes[0].column_names == ["x", "y"]

    def test_recursive_cte_rejected(self):
        # Section 4.1: only non-recursive CTEs are allowed.
        with pytest.raises(UnsupportedSqlError):
            parse_statement(
                "WITH RECURSIVE c AS (SELECT 1) SELECT * FROM c")

    def test_multiple_ctes(self):
        stmt = parse_statement(
            "WITH a AS (SELECT 1 AS x), b AS (SELECT 2 AS y) "
            "SELECT * FROM a, b")
        assert len(stmt.ctes) == 2


class TestComplexityCount:
    def test_counts_base_tables(self):
        stmt = parse_statement("SELECT * FROM a, b, c")
        assert stmt.table_reference_count() == 3

    def test_counts_subquery_tables(self):
        stmt = parse_statement(
            "SELECT * FROM a WHERE EXISTS (SELECT * FROM b)")
        assert stmt.table_reference_count() == 2

    def test_counts_cte_and_consumers(self):
        stmt = parse_statement(
            "WITH c AS (SELECT * FROM t) SELECT * FROM c, c c2")
        # t (in the CTE) plus the two consumer references.
        assert stmt.table_reference_count() == 3

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT a FROM t WHERE a = 1 1")
