"""Tests for shared selectivity estimation."""

import pytest

from repro.selectivity import SelectivityEstimator
from repro.sql.parser import parse_statement
from repro.sql.prepare import prepare
from repro.sql.resolver import Resolver

from tests.conftest import build_mini_db


@pytest.fixture(scope="module")
def db():
    return build_mini_db(seed=13, orders=400)


def conjunct_for(db, condition):
    stmt = parse_statement(f"SELECT 1 FROM orders WHERE {condition}")
    block, __ = Resolver(db.catalog).resolve(stmt)
    prepare(block)
    return block, block.where_conjuncts[0]


class TestHeuristicEstimation:
    def test_equality_uses_ndv(self, db):
        estimator = SelectivityEstimator(db.catalog, use_histograms=False)
        block, conjunct = conjunct_for(db, "o_status = 'O'")
        ndv = db.catalog.statistics("orders").column(
            "o_status").distinct_count
        assert estimator.conjunct_selectivity(block, conjunct) == \
            pytest.approx(1.0 / ndv)

    def test_range_uses_default_third(self, db):
        estimator = SelectivityEstimator(db.catalog, use_histograms=False)
        block, conjunct = conjunct_for(db, "o_totalprice > 9999")
        assert estimator.conjunct_selectivity(block, conjunct) == \
            pytest.approx(1.0 / 3.0)


class TestHistogramEstimation:
    def test_range_uses_histogram(self, db):
        estimator = SelectivityEstimator(db.catalog, use_histograms=True)
        block, conjunct = conjunct_for(db, "o_totalprice > 9000")
        sel = estimator.conjunct_selectivity(block, conjunct)
        values = [o[3] for o in db.storage.heap("orders").rows]
        actual = sum(1 for v in values if v > 9000) / len(values)
        assert sel == pytest.approx(actual, abs=0.08)

    def test_histograms_beat_heuristics(self, db):
        """The core reason Orca's estimates are better."""
        with_h = SelectivityEstimator(db.catalog, use_histograms=True)
        without_h = SelectivityEstimator(db.catalog, use_histograms=False)
        block, conjunct = conjunct_for(db, "o_totalprice > 9500")
        values = [o[3] for o in db.storage.heap("orders").rows]
        actual = sum(1 for v in values if v > 9500) / len(values)
        err_with = abs(with_h.conjunct_selectivity(block, conjunct)
                       - actual)
        err_without = abs(without_h.conjunct_selectivity(block, conjunct)
                          - actual)
        assert err_with < err_without

    def test_between_with_histogram(self, db):
        estimator = SelectivityEstimator(db.catalog, use_histograms=True)
        block, conjunct = conjunct_for(
            db, "o_totalprice BETWEEN 1000 AND 3000")
        sel = estimator.conjunct_selectivity(block, conjunct)
        values = [o[3] for o in db.storage.heap("orders").rows]
        actual = sum(1 for v in values if 1000 <= v <= 3000) / len(values)
        assert sel == pytest.approx(actual, abs=0.08)


class TestCombinators:
    def test_and_multiplies(self, db):
        from repro.sql import ast

        estimator = SelectivityEstimator(db.catalog, use_histograms=False)
        block, first = conjunct_for(db, "o_status = 'O'")
        __, second = conjunct_for(db, "o_status = 'F'")
        combined = ast.BinaryExpr(ast.BinOp.AND, first, second)
        one = estimator.conjunct_selectivity(block, first)
        assert estimator.conjunct_selectivity(block, combined) == \
            pytest.approx(one * one)

    def test_or_is_inclusion_exclusion(self, db):
        estimator = SelectivityEstimator(db.catalog, use_histograms=False)
        block, disj = conjunct_for(db, "o_status = 'O' OR o_status = 'F'")
        sb, single = conjunct_for(db, "o_status = 'O'")
        s = estimator.conjunct_selectivity(sb, single)
        assert estimator.conjunct_selectivity(block, disj) == \
            pytest.approx(s + s - s * s)

    def test_not_complements(self, db):
        estimator = SelectivityEstimator(db.catalog, use_histograms=False)
        block, negated = conjunct_for(db, "NOT o_status = 'O'")
        sb, plain = conjunct_for(db, "o_status = 'O'")
        assert estimator.conjunct_selectivity(block, negated) == \
            pytest.approx(1.0 - estimator.conjunct_selectivity(sb, plain))

    def test_selectivity_always_in_unit_interval(self, db):
        estimator = SelectivityEstimator(db.catalog, use_histograms=True)
        for condition in ("o_orderkey = 1", "o_totalprice < -1",
                          "o_totalprice > -99999",
                          "o_comment LIKE '%x%'",
                          "o_status IN ('O', 'F', 'P', 'Z')",
                          "o_comment IS NULL"):
            block, conjunct = conjunct_for(db, condition)
            sel = estimator.conjunct_selectivity(block, conjunct)
            assert 0.0 <= sel <= 1.0


class TestJoinSelectivity:
    def test_equi_join_uses_larger_ndv(self, db):
        estimator = SelectivityEstimator(db.catalog, use_histograms=True)
        stmt = parse_statement("""
            SELECT 1 FROM orders, customer
            WHERE o_custkey = c_custkey""")
        block, __ = Resolver(db.catalog).resolve(stmt)
        prepare(block)
        conjunct = block.where_conjuncts[0]
        sel = estimator.join_selectivity(block, conjunct)
        custkeys = db.catalog.statistics("customer").column(
            "c_custkey").distinct_count
        o_ndv = db.catalog.statistics("orders").column(
            "o_custkey").distinct_count
        assert sel == pytest.approx(1.0 / max(custkeys, o_ndv))
