"""Row-vs-batch executor equivalence: same rows, same order, same work.

The batch engine must be observationally identical to the row engine —
identical result multisets, identical ordering wherever the query
specifies one, and identical storage access counters on full
consumption.  Statements the batch engine cannot lower must still
produce row-engine results, with the degrade recorded in the fallback
log.
"""

from collections import Counter

import pytest

from repro.resilience import FallbackReason
from tests.conftest import build_mini_db


@pytest.fixture(scope="module")
def db():
    return build_mini_db(seed=37, orders=150)


def run_modes(db, sql, optimizer="auto"):
    row = db.run(sql, optimizer=optimizer, executor_mode="row")
    batch = db.run(sql, optimizer=optimizer, executor_mode="batch")
    return row, batch


#: Queries covering every batched operator: scans (table, index range,
#: index ordered), filters, expression shapes, joins of every kind,
#: both aggregation strategies, sorts, limits, set operations, derived
#: tables, and subqueries that decorrelate into joins.
CORPUS = [
    "SELECT o_orderkey, o_totalprice FROM orders",
    "SELECT o_orderkey FROM orders WHERE o_totalprice > 5000",
    "SELECT o_orderkey FROM orders WHERE o_orderkey BETWEEN 10 AND 40",
    "SELECT o_orderkey FROM orders ORDER BY o_orderkey DESC",
    "SELECT o_orderkey, o_totalprice FROM orders "
    "ORDER BY o_totalprice DESC, o_orderkey LIMIT 7",
    "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 5 OFFSET 95",
    "SELECT DISTINCT o_status FROM orders",
    "SELECT o_status, COUNT(*), SUM(o_totalprice), AVG(o_totalprice), "
    "MIN(o_orderdate), MAX(o_orderdate) FROM orders GROUP BY o_status",
    "SELECT o_custkey, COUNT(DISTINCT o_status) FROM orders "
    "GROUP BY o_custkey ORDER BY o_custkey",
    "SELECT COUNT(*) FROM orders WHERE o_comment IS NULL",
    "SELECT o_status, COUNT(*) FROM orders GROUP BY o_status "
    "HAVING COUNT(*) > 5 ORDER BY o_status",
    "SELECT c_name, o_totalprice FROM customer "
    "JOIN orders ON c_custkey = o_custkey WHERE o_totalprice > 8000",
    "SELECT c_name, COUNT(*) FROM customer "
    "LEFT JOIN orders ON c_custkey = o_custkey AND o_totalprice > 9000 "
    "GROUP BY c_name ORDER BY c_name",
    "SELECT o_orderkey, l_quantity FROM orders JOIN lineitem "
    "ON o_orderkey = l_orderkey WHERE l_quantity > 30",
    "SELECT c_name FROM customer WHERE c_custkey IN "
    "(SELECT o_custkey FROM orders WHERE o_totalprice > 9000)",
    "SELECT c_name FROM customer WHERE c_custkey NOT IN "
    "(SELECT o_custkey FROM orders WHERE o_totalprice > 9500)",
    "SELECT c_name FROM customer WHERE EXISTS "
    "(SELECT 1 FROM orders WHERE o_custkey = c_custkey)",
    "SELECT o_priority, CASE WHEN o_totalprice > 5000 THEN 'big' "
    "ELSE 'small' END FROM orders",
    "SELECT COALESCE(o_comment, 'none') FROM orders",
    "SELECT o_orderkey FROM orders WHERE o_priority LIKE '%URGENT%'",
    "SELECT o_orderkey FROM orders "
    "WHERE o_status IN ('F', 'O') AND o_totalprice < 2000",
    "SELECT UPPER(o_status), o_orderkey + 1 FROM orders LIMIT 20",
    "SELECT t.s, t.n FROM (SELECT o_status AS s, COUNT(*) AS n "
    "FROM orders GROUP BY o_status) t WHERE t.n > 2",
    "SELECT o_status FROM orders WHERE o_totalprice > 9000 "
    "UNION SELECT o_status FROM orders WHERE o_totalprice < 500 "
    "ORDER BY o_status",
    "SELECT o_orderkey FROM orders WHERE o_orderkey < 5 "
    "UNION ALL SELECT o_orderkey FROM orders WHERE o_orderkey < 3",
    "SELECT COUNT(*), SUM(l_quantity * l_price) FROM lineitem "
    "WHERE l_shipdate >= DATE '1995-01-01'",
    "SELECT COUNT(*) FROM part p1, part p2 "
    "WHERE p1.p_partkey <= 4 AND p2.p_partkey <= 4",
    "SELECT 1 + 2, 'x'",
]

ORDERED = [sql for sql in CORPUS if "ORDER BY" in sql]


class TestResultEquivalence:
    @pytest.mark.parametrize("sql", CORPUS)
    def test_same_multiset(self, db, sql):
        row, batch = run_modes(db, sql)
        assert Counter(row.rows) == Counter(batch.rows)

    @pytest.mark.parametrize("sql", ORDERED)
    def test_same_ordering(self, db, sql):
        row, batch = run_modes(db, sql)
        assert row.rows == batch.rows

    @pytest.mark.parametrize("sql", CORPUS)
    def test_both_optimizers(self, db, sql):
        for optimizer in ("mysql", "orca"):
            row, batch = run_modes(db, sql, optimizer=optimizer)
            assert Counter(row.rows) == Counter(batch.rows), optimizer


class TestModeReporting:
    def test_result_reports_batch_mode(self, db):
        result = db.run("SELECT o_orderkey FROM orders",
                        executor_mode="batch")
        assert result.executor_mode == "batch"

    def test_result_reports_row_mode(self, db):
        result = db.run("SELECT o_orderkey FROM orders",
                        executor_mode="row")
        assert result.executor_mode == "row"

    def test_default_mode_comes_from_config(self, db):
        assert db.config.executor_mode == "batch"
        result = db.run("SELECT COUNT(*) FROM orders")
        assert result.executor_mode == "batch"

    def test_unknown_mode_rejected(self, db):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            db.run("SELECT 1", executor_mode="columnar")


class TestCounterParity:
    """AccessCounters must charge identical totals in both modes when
    the plan is consumed to completion (no LIMIT)."""

    PARITY_QUERIES = [
        "SELECT o_orderkey FROM orders WHERE o_totalprice > 3000",
        "SELECT o_status, COUNT(*) FROM orders GROUP BY o_status",
        "SELECT c_name, o_totalprice FROM customer "
        "JOIN orders ON c_custkey = o_custkey",
        "SELECT o_orderkey FROM orders "
        "WHERE o_orderkey BETWEEN 20 AND 60",
    ]

    @pytest.mark.parametrize("sql", PARITY_QUERIES)
    def test_counters_match(self, db, sql):
        counters = db.storage.counters
        snapshots = {}
        for mode in ("row", "batch"):
            counters.reset()
            db.run(sql, executor_mode=mode)
            snapshots[mode] = counters.snapshot()
        assert snapshots["row"] == snapshots["batch"]


class TestFallback:
    def test_window_function_degrades_to_row(self, db):
        sql = ("SELECT o_orderkey, RANK() OVER "
               "(ORDER BY o_totalprice DESC) FROM orders")
        row, batch = run_modes(db, sql)
        assert batch.executor_mode == "row"
        assert row.rows == batch.rows
        events = [e for e in db.fallback_log.events
                  if e.reason is FallbackReason.EXEC_BATCH_UNSUPPORTED]
        assert events
        assert "window" in (events[-1].error_message or "")

    def test_supported_statement_does_not_log_fallback(self, db):
        before = sum(
            1 for e in db.fallback_log.events
            if e.reason is FallbackReason.EXEC_BATCH_UNSUPPORTED)
        db.run("SELECT COUNT(*) FROM orders", executor_mode="batch")
        after = sum(
            1 for e in db.fallback_log.events
            if e.reason is FallbackReason.EXEC_BATCH_UNSUPPORTED)
        assert after == before


class TestBatchMetrics:
    def test_batch_counters_advance(self, db):
        before_batches = db.metrics.count("executor.batches")
        before_rows = db.metrics.count("executor.batch_rows")
        before_exprs = db.metrics.count("exec.compiled_exprs")
        db.run("SELECT o_orderkey FROM orders WHERE o_totalprice > 0",
               executor_mode="batch")
        assert db.metrics.count("executor.batches") > before_batches
        assert db.metrics.count("executor.batch_rows") > before_rows
        assert db.metrics.count("exec.compiled_exprs") > before_exprs

    def test_row_mode_leaves_batch_counters(self, db):
        before = db.metrics.count("executor.batches")
        db.run("SELECT o_orderkey FROM orders", executor_mode="row")
        assert db.metrics.count("executor.batches") == before
