"""Tests for the expression compiler: SQL semantics over context rows."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.executor.expression import ExpressionCompiler, is_true
from repro.mysql_types import Interval
from repro.sql import ast


def lit(value):
    return ast.Literal(value)


def col(entry_id, position):
    return ast.ColumnRef(None, f"c{position}", entry_id, position)


def evaluate(expr, ctx=None):
    return ExpressionCompiler().compile(expr)(ctx or [])


class TestLiteralsAndColumns:
    def test_literal(self):
        assert evaluate(lit(42)) == 42

    def test_column_read(self):
        ctx = [None, (10, "x")]
        assert evaluate(col(1, 0), ctx) == 10

    def test_null_extended_row_reads_null(self):
        # A LEFT JOIN miss sets the slot to None; columns read as NULL.
        ctx = [None]
        assert evaluate(col(0, 0), ctx) is None

    def test_unresolved_column_rejected(self):
        with pytest.raises(ExecutionError):
            evaluate(ast.ColumnRef(None, "x"))


class TestThreeValuedLogic:
    def test_and_truth_table(self):
        cases = [
            (True, True, True), (True, False, False),
            (True, None, None), (False, None, False),
            (None, None, None), (False, False, False),
        ]
        for a, b, expected in cases:
            expr = ast.BinaryExpr(ast.BinOp.AND, lit(a), lit(b))
            assert evaluate(expr) is expected, (a, b)

    def test_or_truth_table(self):
        cases = [
            (True, None, True), (False, None, None),
            (None, None, None), (False, False, False),
            (True, False, True),
        ]
        for a, b, expected in cases:
            expr = ast.BinaryExpr(ast.BinOp.OR, lit(a), lit(b))
            assert evaluate(expr) is expected, (a, b)

    def test_not_of_null(self):
        assert evaluate(ast.NotExpr(lit(None))) is None

    def test_comparison_with_null_is_unknown(self):
        expr = ast.BinaryExpr(ast.BinOp.EQ, lit(None), lit(1))
        assert evaluate(expr) is None

    def test_is_true_only_for_true(self):
        assert is_true(True)
        assert not is_true(None)
        assert not is_true(False)
        assert not is_true(1)


class TestPredicates:
    def test_between(self):
        expr = ast.BetweenExpr(lit(5), lit(1), lit(10))
        assert evaluate(expr) is True

    def test_between_null_operand(self):
        expr = ast.BetweenExpr(lit(None), lit(1), lit(10))
        assert evaluate(expr) is None

    def test_like_percent(self):
        expr = ast.LikeExpr(lit("hello world"), lit("%wor%"))
        assert evaluate(expr) is True

    def test_like_underscore(self):
        assert evaluate(ast.LikeExpr(lit("cat"), lit("c_t"))) is True
        assert evaluate(ast.LikeExpr(lit("cart"), lit("c_t"))) is False

    def test_like_anchors(self):
        assert evaluate(ast.LikeExpr(lit("abc"), lit("abc"))) is True
        assert evaluate(ast.LikeExpr(lit("xabc"), lit("abc"))) is False

    def test_not_like(self):
        expr = ast.LikeExpr(lit("abc"), lit("%b%"), negated=True)
        assert evaluate(expr) is False

    def test_like_escapes_regex_chars(self):
        assert evaluate(ast.LikeExpr(lit("a.c"), lit("a.c"))) is True
        assert evaluate(ast.LikeExpr(lit("abc"), lit("a.c"))) is False

    def test_in_list(self):
        expr = ast.InListExpr(lit(2), [lit(1), lit(2)])
        assert evaluate(expr) is True

    def test_not_in_list_with_null_is_unknown(self):
        expr = ast.InListExpr(lit(3), [lit(1), lit(None)], negated=True)
        assert evaluate(expr) is None

    def test_is_null(self):
        assert evaluate(ast.IsNullExpr(lit(None))) is True
        assert evaluate(ast.IsNullExpr(lit(1), negated=True)) is True

    def test_case_first_match_wins(self):
        expr = ast.CaseExpr(
            [(lit(False), lit("a")), (lit(True), lit("b")),
             (lit(True), lit("c"))], lit("d"))
        assert evaluate(expr) == "b"

    def test_case_else(self):
        expr = ast.CaseExpr([(lit(False), lit("a"))], lit("fallback"))
        assert evaluate(expr) == "fallback"

    def test_case_no_else_returns_null(self):
        expr = ast.CaseExpr([(lit(False), lit("a"))])
        assert evaluate(expr) is None


class TestArithmetic:
    def test_division_by_zero_is_null(self):
        expr = ast.BinaryExpr(ast.BinOp.DIV, lit(1), lit(0))
        assert evaluate(expr) is None

    def test_date_plus_interval(self):
        expr = ast.BinaryExpr(
            ast.BinOp.ADD, lit(datetime.date(1995, 1, 30)),
            ast.IntervalLiteral(Interval(days=3)))
        assert evaluate(expr) == datetime.date(1995, 2, 2)

    def test_date_minus_date_gives_days(self):
        expr = ast.BinaryExpr(
            ast.BinOp.SUB, lit(datetime.date(1995, 2, 1)),
            lit(datetime.date(1995, 1, 1)))
        assert evaluate(expr) == 31

    def test_negation(self):
        assert evaluate(ast.NegExpr(lit(5))) == -5
        assert evaluate(ast.NegExpr(lit(None))) is None

    @given(st.one_of(st.none(), st.integers(-100, 100)),
           st.one_of(st.none(), st.integers(-100, 100)))
    @settings(max_examples=100)
    def test_null_propagation(self, a, b):
        """Property: any NULL operand makes arithmetic NULL."""
        for op in (ast.BinOp.ADD, ast.BinOp.SUB, ast.BinOp.MUL):
            value = evaluate(ast.BinaryExpr(op, lit(a), lit(b)))
            if a is None or b is None:
                assert value is None
            else:
                assert value is not None


class TestFunctions:
    def test_substring(self):
        expr = ast.FuncCall("SUBSTRING", [lit("abcdef"), lit(2), lit(3)])
        assert evaluate(expr) == "bcd"

    def test_concat(self):
        expr = ast.FuncCall("CONCAT", [lit("a"), lit("b"), lit(1)])
        assert evaluate(expr) == "ab1"

    def test_coalesce(self):
        expr = ast.FuncCall("COALESCE", [lit(None), lit(None), lit(3)])
        assert evaluate(expr) == 3

    def test_extract_year(self):
        expr = ast.FuncCall("EXTRACT_YEAR",
                            [lit(datetime.date(1995, 6, 17))])
        assert evaluate(expr) == 1995

    def test_cast_signed(self):
        assert evaluate(ast.FuncCall("CAST_SIGNED", [lit("42")])) == 42

    def test_floor(self):
        assert evaluate(ast.FuncCall("FLOOR", [lit(3.7)])) == 3

    def test_unknown_function(self):
        with pytest.raises(ExecutionError):
            evaluate(ast.FuncCall("NO_SUCH_FUNC", []))

    def test_null_guard_on_functions(self):
        assert evaluate(ast.FuncCall("UPPER", [lit(None)])) is None


class TestCompilerGuards:
    def test_aggregate_rejected(self):
        with pytest.raises(ExecutionError):
            evaluate(ast.AggCall(ast.AggFunc.SUM, lit(1)))

    def test_window_rejected(self):
        with pytest.raises(ExecutionError):
            evaluate(ast.WindowCall("RANK", []))

    def test_subquery_needs_host(self):
        expr = ast.ScalarSubquery(None)
        expr.block = object()
        with pytest.raises(ExecutionError):
            ExpressionCompiler().compile(expr)

    def test_filter_of_empty_conjuncts_is_true(self):
        fn = ExpressionCompiler().compile_filter([])
        assert fn([]) is True

    def test_filter_combines_conjuncts(self):
        fn = ExpressionCompiler().compile_filter([lit(True), lit(False)])
        assert fn([]) is False
