"""Tests for expression rewriting utilities (map_expr, expr_key)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import ast
from repro.sql.rewrite import (
    expr_key,
    map_expr,
    substitute_entry_columns,
)


def lit(value):
    return ast.Literal(value)


def col(entry_id, position):
    return ast.ColumnRef(None, f"c{position}", entry_id, position)


class TestMapExpr:
    def test_identity_returns_same_object(self):
        expr = ast.BinaryExpr(ast.BinOp.ADD, lit(1), lit(2))
        assert map_expr(expr, lambda node: None) is expr

    def test_leaf_replacement_rebuilds_spine(self):
        expr = ast.BinaryExpr(ast.BinOp.ADD, col(0, 0), lit(2))
        replaced = map_expr(
            expr,
            lambda node: lit(9) if isinstance(node, ast.ColumnRef)
            else None)
        assert replaced is not expr
        assert replaced.left.value == 9
        # The untouched literal node is shared, not copied.
        assert replaced.right is expr.right

    def test_original_never_mutated(self):
        expr = ast.NotExpr(ast.IsNullExpr(col(0, 0)))
        map_expr(expr, lambda node: lit(True)
                 if isinstance(node, ast.ColumnRef) else None)
        assert isinstance(expr.operand.operand, ast.ColumnRef)

    def test_nested_case(self):
        expr = ast.CaseExpr([(col(0, 0), lit("a"))], lit("b"))
        replaced = map_expr(
            expr, lambda node: lit(False)
            if isinstance(node, ast.ColumnRef) else None)
        assert replaced.whens[0][0].value is False

    def test_in_list_items_mapped(self):
        expr = ast.InListExpr(col(0, 0), [col(0, 1), lit(3)])
        replaced = map_expr(
            expr, lambda node: lit(0)
            if isinstance(node, ast.ColumnRef) else None)
        assert replaced.operand.value == 0
        assert replaced.items[0].value == 0
        assert replaced.items[1] is expr.items[1]

    def test_subquery_not_entered(self):
        marker = ast.ScalarSubquery(None)
        marker.block = "sentinel"
        expr = ast.BinaryExpr(ast.BinOp.GT, col(0, 0), marker)
        replaced = map_expr(
            expr, lambda node: lit(1)
            if isinstance(node, ast.ColumnRef) else None)
        assert replaced.right is marker


class TestSubstituteEntryColumns:
    def test_substitutes_only_target_entry(self):
        expr = ast.BinaryExpr(ast.BinOp.EQ, col(5, 0), col(6, 0))
        out = substitute_entry_columns(expr, 5, [lit("X")])
        assert out.left.value == "X"
        assert isinstance(out.right, ast.ColumnRef)

    def test_position_indexes_replacements(self):
        expr = ast.BinaryExpr(ast.BinOp.ADD, col(5, 1), col(5, 0))
        out = substitute_entry_columns(expr, 5, [lit("zero"), lit("one")])
        assert out.left.value == "one"
        assert out.right.value == "zero"


class TestExprKey:
    def test_structural_equality(self):
        a = ast.BinaryExpr(ast.BinOp.EQ, col(1, 2), lit(5))
        b = ast.BinaryExpr(ast.BinOp.EQ, col(1, 2), lit(5))
        assert a is not b
        assert expr_key(a) == expr_key(b)

    def test_different_ops_differ(self):
        a = ast.BinaryExpr(ast.BinOp.LT, col(1, 2), lit(5))
        b = ast.BinaryExpr(ast.BinOp.LE, col(1, 2), lit(5))
        assert expr_key(a) != expr_key(b)

    def test_different_bindings_differ(self):
        assert expr_key(col(1, 2)) != expr_key(col(1, 3))
        assert expr_key(col(1, 2)) != expr_key(col(2, 2))

    def test_aggregate_distinct_flag_matters(self):
        a = ast.AggCall(ast.AggFunc.COUNT, col(0, 0), distinct=True)
        b = ast.AggCall(ast.AggFunc.COUNT, col(0, 0), distinct=False)
        assert expr_key(a) != expr_key(b)

    def test_count_star_vs_count_column(self):
        star = ast.AggCall(ast.AggFunc.COUNT, star=True)
        column = ast.AggCall(ast.AggFunc.COUNT, col(0, 0))
        assert expr_key(star) != expr_key(column)

    def test_keys_are_hashable(self):
        exprs = [
            lit(None), col(0, 1),
            ast.BetweenExpr(col(0, 0), lit(1), lit(2)),
            ast.LikeExpr(col(0, 0), lit("%x%")),
            ast.CaseExpr([(lit(True), lit(1))], None),
            ast.FuncCall("UPPER", [col(0, 0)]),
            ast.WindowCall("RANK", [], [col(0, 0)],
                           [ast.OrderItem(col(0, 1), True)]),
        ]
        assert len({expr_key(e) for e in exprs}) == len(exprs)

    @given(st.integers(0, 5), st.integers(0, 5),
           st.sampled_from(list(ast.BinOp)))
    @settings(max_examples=100)
    def test_key_is_deterministic(self, entry, position, op):
        expr = ast.BinaryExpr(op, col(entry, position), lit(entry))
        assert expr_key(expr) == expr_key(expr)