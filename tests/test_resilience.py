"""Fault containment: guarded fallback, budgets, breaker, injection.

The paper's operational promise (Section 4.2.1) is that any abort of the
Orca detour "resorts to the usual MySQL query optimization".  These
tests prove the promise holds for *every* failure mode — typed aborts,
unexpected exceptions, and budget overruns, injected deterministically
at each of the four bridge injection points — and that the telemetry
(FallbackLog) and quarantine (CircuitBreaker) around it behave.
"""

import pytest

from repro import Database, DatabaseConfig, FallbackReason, FaultInjector
from repro.bench.harness import run_suite
from repro.bench.report import summarize
from repro.errors import BudgetExceededError, ReproError
from repro.mysql_optimizer.optimizer import MySQLOptimizer
from repro.resilience import (
    BRIDGE_INJECTION_SITES,
    CircuitBreaker,
    CompileBudget,
    DetourGuard,
    FallbackEvent,
    FallbackLog,
    statement_fingerprint,
)

from tests.conftest import build_mini_db

SQL = """
SELECT COUNT(*) FROM customer, orders, lineitem
WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey
"""


@pytest.fixture()
def db():
    return build_mini_db(seed=71, orders=80)


# -- fault injection at every bridge point --------------------------------------------


class TestInjectedFaultsAreContained:
    """Acceptance: faults at each injection point never raise; the query
    returns MySQL-optimized rows identical to ``optimizer="mysql"`` and
    the FallbackLog records the correct reason."""

    @pytest.mark.parametrize("site", BRIDGE_INJECTION_SITES)
    def test_typed_abort_falls_back(self, db, site):
        expected = db.execute(SQL, optimizer="mysql")
        db.config.fault_injector = FaultInjector().arm(site, "typed")
        result = db.run(SQL, optimizer="orca")
        assert result.optimizer_used == "mysql"
        assert result.fallback_reason is FallbackReason.TYPED_ABORT
        assert result.rows == expected
        assert db.fallback_log.count(FallbackReason.TYPED_ABORT) == 1

    @pytest.mark.parametrize("site", BRIDGE_INJECTION_SITES)
    def test_keyerror_crash_is_contained(self, db, site):
        expected = db.execute(SQL, optimizer="mysql")
        db.config.fault_injector = FaultInjector().arm(site, "crash")
        result = db.run(SQL, optimizer="orca")
        assert result.optimizer_used == "mysql"
        assert result.fallback_reason is \
            FallbackReason.UNEXPECTED_EXCEPTION
        assert result.rows == expected
        event = db.fallback_log.last_event
        assert event.error_type == "KeyError"
        assert site in event.error_message

    @pytest.mark.parametrize("site", BRIDGE_INJECTION_SITES)
    def test_sleep_past_budget_aborts_compile(self, db, site):
        expected = db.execute(SQL, optimizer="mysql")
        db.config.orca_compile_budget_seconds = 0.01
        db.config.fault_injector = FaultInjector().arm(
            site, "sleep", sleep_seconds=0.05)
        result = db.run(SQL, optimizer="orca")
        assert result.optimizer_used == "mysql"
        assert result.fallback_reason is FallbackReason.BUDGET_EXCEEDED
        assert result.rows == expected

    def test_fault_fires_only_armed_times(self, db):
        db.config.fault_injector = FaultInjector().arm(
            "optimizer", "typed", times=1)
        first = db.run(SQL, optimizer="orca")
        second = db.run(SQL, optimizer="orca")
        assert first.optimizer_used == "mysql"
        assert second.optimizer_used == "orca"
        assert db.config.fault_injector.fired["optimizer"] == 1

    def test_disarmed_injector_is_inert(self, db):
        injector = FaultInjector().arm("optimizer", "crash")
        injector.disarm("optimizer")
        db.config.fault_injector = injector
        result = db.run(SQL, optimizer="orca")
        assert result.optimizer_used == "orca"
        assert injector.reached["optimizer"] >= 1
        assert injector.fired["optimizer"] == 0

    def test_probability_mode_is_seed_deterministic(self):
        def fired_pattern(seed):
            injector = FaultInjector(seed=seed).arm(
                "optimizer", "typed", probability=0.5)
            pattern = []
            for __ in range(20):
                try:
                    injector.fire("optimizer")
                    pattern.append(False)
                except Exception:
                    pattern.append(True)
            return pattern

        assert fired_pattern(7) == fired_pattern(7)
        assert True in fired_pattern(7) and False in fired_pattern(7)

    def test_unknown_site_and_action_rejected(self):
        with pytest.raises(ReproError):
            FaultInjector().arm("executor", "typed")
        with pytest.raises(ReproError):
            FaultInjector().arm("optimizer", "explode")


class TestStrictMode:
    def test_containment_can_be_disabled_for_debugging(self, db):
        db.config.contain_unexpected_errors = False
        db.config.fault_injector = FaultInjector().arm(
            "optimizer", "crash")
        with pytest.raises(KeyError):
            db.run(SQL, optimizer="orca")

    def test_typed_aborts_still_fall_back_in_strict_mode(self, db):
        db.config.contain_unexpected_errors = False
        db.config.fault_injector = FaultInjector().arm(
            "optimizer", "typed")
        result = db.run(SQL, optimizer="orca")
        assert result.optimizer_used == "mysql"
        assert result.fallback_reason is FallbackReason.TYPED_ABORT


# -- compile budgets ---------------------------------------------------------------------


class TestCompileBudget:
    def test_memo_group_cap_aborts_search(self, db):
        expected = db.execute(SQL, optimizer="mysql")
        db.config.orca_memo_group_budget = 1
        result = db.run(SQL, optimizer="orca")
        assert result.optimizer_used == "mysql"
        assert result.fallback_reason is FallbackReason.BUDGET_EXCEEDED
        assert result.rows == expected

    def test_generous_budget_leaves_detour_alone(self, db):
        db.config.orca_compile_budget_seconds = 60.0
        db.config.orca_memo_group_budget = 100_000
        result = db.run(SQL, optimizer="orca")
        assert result.optimizer_used == "orca"
        assert result.fallback_reason is None

    def test_budget_object_checks_both_caps(self):
        ticks = [0.0]
        budget = CompileBudget(seconds=1.0, max_memo_groups=10,
                               clock=lambda: ticks[0])
        budget.check(5)  # within both caps
        ticks[0] = 2.0
        with pytest.raises(BudgetExceededError):
            budget.check(5)
        budget = CompileBudget(max_memo_groups=10)
        with pytest.raises(BudgetExceededError):
            budget.check(11)

    def test_unlimited_budget_never_raises(self):
        budget = CompileBudget()
        assert budget.unlimited
        budget.check(10 ** 9)


# -- circuit breaker ---------------------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_after_n_crashes_and_skips_detour(self, db):
        """Acceptance: after N injected crashes the fingerprint routes
        straight to MySQL without re-entering the detour (asserted via
        the detour-entry counter)."""
        expected = db.execute(SQL, optimizer="mysql")
        threshold = db.config.circuit_breaker_threshold
        db.config.fault_injector = FaultInjector().arm(
            "plan_converter", "crash")
        for __ in range(threshold):
            result = db.run(SQL, optimizer="orca")
            assert result.fallback_reason is \
                FallbackReason.UNEXPECTED_EXCEPTION
        entries_when_open = db.fallback_log.detours_entered
        for __ in range(3):
            result = db.run(SQL, optimizer="orca")
            assert result.fallback_reason is FallbackReason.CIRCUIT_OPEN
            assert result.optimizer_used == "mysql"
            assert result.rows == expected
        assert db.fallback_log.detours_entered == entries_when_open
        assert db.fallback_log.count(FallbackReason.CIRCUIT_OPEN) == 3

    def test_typed_aborts_do_not_trip_the_breaker(self, db):
        db.config.fault_injector = FaultInjector().arm(
            "optimizer", "typed")
        for __ in range(db.config.circuit_breaker_threshold + 2):
            result = db.run(SQL, optimizer="orca")
            assert result.fallback_reason is FallbackReason.TYPED_ABORT
        fingerprint = statement_fingerprint(SQL)
        assert not db.circuit_breaker.is_open(fingerprint)

    def test_quarantine_is_per_fingerprint(self, db):
        db.config.fault_injector = FaultInjector().arm(
            "optimizer", "crash")
        for __ in range(db.config.circuit_breaker_threshold):
            db.run(SQL, optimizer="orca")
        db.config.fault_injector = None
        other = """
            SELECT COUNT(*) FROM part, orders, lineitem
            WHERE p_partkey = l_partkey AND o_orderkey = l_orderkey"""
        assert db.run(SQL, optimizer="orca").fallback_reason is \
            FallbackReason.CIRCUIT_OPEN
        assert db.run(other, optimizer="orca").optimizer_used == "orca"

    def test_literals_share_a_quarantine_fingerprint(self, db):
        db.config.fault_injector = FaultInjector().arm(
            "optimizer", "crash")
        template = SQL + " AND o_totalprice > {}"
        for bound in range(db.config.circuit_breaker_threshold):
            db.run(template.format(bound), optimizer="orca")
        result = db.run(template.format(999), optimizer="orca")
        assert result.fallback_reason is FallbackReason.CIRCUIT_OPEN

    def test_breaker_decays_and_closes_on_success(self, db):
        clock = [0.0]
        db.circuit_breaker = CircuitBreaker(
            threshold=2, reset_seconds=10.0, clock=lambda: clock[0])
        db.config.fault_injector = FaultInjector().arm(
            "optimizer", "crash", times=2)
        db.run(SQL, optimizer="orca")
        db.run(SQL, optimizer="orca")
        fingerprint = statement_fingerprint(SQL)
        assert db.circuit_breaker.is_open(fingerprint)
        assert db.run(SQL, optimizer="orca").fallback_reason is \
            FallbackReason.CIRCUIT_OPEN
        # After the reset window one trial detour is allowed (half-open);
        # the injector is exhausted, so it succeeds and closes the breaker.
        clock[0] = 11.0
        result = db.run(SQL, optimizer="orca")
        assert result.optimizer_used == "orca"
        assert not db.circuit_breaker.is_open(fingerprint)
        assert db.circuit_breaker.failures(fingerprint) == 0

    def test_breaker_unit_behaviour(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=2, reset_seconds=5.0,
                                 clock=lambda: clock[0])
        assert breaker.allow("fp")
        breaker.record_failure("fp")
        assert breaker.allow("fp")
        breaker.record_failure("fp")
        assert not breaker.allow("fp")
        assert breaker.open_fingerprints == ["fp"]
        clock[0] = 6.0
        assert breaker.allow("fp")  # half-open trial
        breaker.record_failure("fp")
        assert not breaker.allow("fp")  # re-opened immediately

    def test_threshold_must_be_positive(self):
        with pytest.raises(ReproError):
            CircuitBreaker(threshold=0)


# -- telemetry ---------------------------------------------------------------------------


class TestFallbackTelemetry:
    def test_log_counts_and_history(self, db):
        db.config.fault_injector = FaultInjector().arm(
            "optimizer", "crash", times=1)
        db.run(SQL, optimizer="orca")
        db.run(SQL, optimizer="orca")  # injector exhausted: succeeds
        log = db.fallback_log
        assert log.detours_entered == 2
        assert log.detours_succeeded == 1
        assert log.total_fallbacks == 1
        history = log.history(statement_fingerprint(SQL))
        assert len(history) == 1
        assert history[0].reason is FallbackReason.UNEXPECTED_EXCEPTION

    def test_resilience_report_text(self, db):
        db.config.fault_injector = FaultInjector().arm(
            "parse_tree_converter", "crash")
        for __ in range(db.config.circuit_breaker_threshold + 1):
            db.run(SQL, optimizer="orca")
        report = db.resilience_report()
        assert "detours entered" in report
        assert "unexpected_exception" in report
        assert "circuit_open" in report
        assert "open circuits:     1" in report
        assert "KeyError" in report or "circuit_open" in report

    def test_successful_detour_leaves_no_fallback(self, db):
        result = db.run(SQL, optimizer="orca")
        assert result.optimizer_used == "orca"
        assert result.fallback_reason is None
        assert db.fallback_log.total_fallbacks == 0

    def test_log_is_bounded(self):
        log = FallbackLog(max_events=4)
        for index in range(10):
            log.record_fallback(FallbackEvent(
                fingerprint=f"fp{index}",
                reason=FallbackReason.TYPED_ABORT))
        assert len(log.events) == 4
        assert log.total_fallbacks == 10  # counters are not bounded

    def test_bench_harness_reports_fallbacks(self, db):
        db.config.fault_injector = FaultInjector().arm(
            "optimizer", "typed")
        queries = {1: SQL}
        result = run_suite(db, queries, "resilience", timeout_seconds=60)
        timing = result.timings[0]
        assert timing.orca_fallback_reason == "typed_abort"
        assert timing.results_match
        assert result.fallback_counts == {"typed_abort": 1}
        assert summarize(result)["orca_fallbacks"] == {"typed_abort": 1}


# -- fingerprinting ----------------------------------------------------------------------


class TestStatementFingerprint:
    def test_literals_normalised(self):
        a = statement_fingerprint(
            "SELECT * FROM orders WHERE o_totalprice > 100")
        b = statement_fingerprint(
            "SELECT * FROM orders WHERE o_totalprice > 2.5")
        assert a == b

    def test_string_literals_and_whitespace_normalised(self):
        a = statement_fingerprint(
            "SELECT *  FROM customer\nWHERE c_segment = 'GOLD'")
        b = statement_fingerprint(
            "select * from customer where c_segment = 'SILVER'")
        assert a == b

    def test_different_shapes_differ(self):
        a = statement_fingerprint("SELECT * FROM orders")
        b = statement_fingerprint("SELECT * FROM lineitem")
        assert a != b

    def test_identifiers_with_digits_survive(self):
        a = statement_fingerprint("SELECT l1.l_quantity FROM lineitem l1")
        b = statement_fingerprint("SELECT l2.l_quantity FROM lineitem l2")
        assert a != b


# -- config validation (satellites) -------------------------------------------------------


class TestConfigValidation:
    def test_invalid_routing_rejected_at_construction(self):
        with pytest.raises(ReproError, match="cost-based"):
            DatabaseConfig(routing="cost-based")

    def test_invalid_routing_rejected_after_mutation(self, db):
        db.config.routing = "cost-based"
        with pytest.raises(ReproError, match="valid choices"):
            db.run(SQL)

    def test_invalid_orca_search_rejected_at_construction(self):
        with pytest.raises(ReproError, match="EXHAUSTIVE2"):
            DatabaseConfig(orca_search="FANCY")

    def test_invalid_orca_search_rejected_by_router(self, db):
        db.config.orca_search = "FANCY"
        with pytest.raises(ReproError, match="valid choices"):
            db.run(SQL, optimizer="orca")


# -- run(..., explain=True) (satellite) ---------------------------------------------------


class TestRunExplain:
    def test_run_populates_explain_on_request(self, db):
        result = db.run(SQL, optimizer="orca", explain=True)
        assert result.explain is not None
        assert result.explain.startswith("EXPLAIN (ORCA)")
        assert result.rows  # the query still executed

    def test_run_skips_explain_by_default(self, db):
        assert db.run(SQL).explain is None


# -- cost-based routing's fallback leg (satellite) ----------------------------------------


class TestCostBasedFallbackLeg:
    def test_greedy_skeleton_reused_on_orca_abort(self, db, monkeypatch):
        """When cost-based routing detours and Orca aborts, the greedy
        skeleton already computed must be reused — not recomputed."""
        db.config.routing = "cost_based"
        db.config.mysql_cost_threshold = 0.0  # always detour
        db.config.fault_injector = FaultInjector().arm(
            "optimizer", "typed")
        expected = db.execute(SQL, optimizer="mysql")

        calls = []
        original = MySQLOptimizer.optimize

        def counting(self, block, context):
            calls.append(1)
            return original(self, block, context)

        monkeypatch.setattr(MySQLOptimizer, "optimize", counting)
        result = db.run(SQL)
        assert result.optimizer_used == "mysql"
        assert result.fallback_reason is FallbackReason.TYPED_ABORT
        assert result.rows == expected
        assert len(calls) == 1  # greedy ran once; no recompute on abort

    def test_cost_based_detour_still_wins_when_orca_healthy(self, db):
        db.config.routing = "cost_based"
        db.config.mysql_cost_threshold = 0.0
        result = db.run(SQL)
        assert result.optimizer_used == "orca"
        assert result.fallback_reason is None


# -- the guard itself ---------------------------------------------------------------------


class TestDetourGuard:
    def test_guard_classifies_and_contains(self):
        guard = DetourGuard()
        outcome = guard.run(lambda: (_ for _ in ()).throw(
            RecursionError("deep")))
        assert outcome.skeleton is None
        assert outcome.reason is FallbackReason.UNEXPECTED_EXCEPTION
        assert outcome.error_type == "RecursionError"

    def test_guard_passes_results_through(self):
        outcome = DetourGuard().run(lambda: "skeleton")
        assert outcome.ok
        assert outcome.skeleton == "skeleton"
        assert outcome.reason is None
