"""Flight recorder: bounded history, registry snapshots, the p95
regression watchdog, and its wiring into the workload advisor.

The recorder is the "what was the engine doing right before things
went bad" surface: a ring of one :class:`FlightRecord` per finished
statement plus periodic registry snapshots.  The watchdog compares
trailing-window p95 per fingerprint against the window before it; a
confirmed regression flows — through the Database — into the workload
repository, where the existing Advisor surfaces and remediates it.
"""

import json

import pytest

from repro import Database, DatabaseConfig
from repro.errors import DeadlineExceededError, ReproError
from repro.flight import (FlightRecord, FlightRecorder, WatchdogFinding,
                          _exact_p95, format_flight_report,
                          format_top_report)
from repro.observability import MetricsRegistry
from tests.conftest import build_mini_db

SCAN_SQL = "SELECT o_orderkey FROM orders WHERE o_totalprice > 100"
JOIN_SQL = ("SELECT c_name, COUNT(*) FROM customer, orders "
            "WHERE c_custkey = o_custkey GROUP BY c_name")


def make_record(fingerprint="fp-a", execute_seconds=0.01,
                aborted=False, **overrides):
    options = dict(seq=0, statement_id=1, fingerprint=fingerprint,
                   sql=f"SELECT /* {fingerprint} */ 1",
                   execute_seconds=execute_seconds,
                   compile_seconds=0.001, aborted=aborted)
    options.update(overrides)
    return FlightRecord(**options)


class TestRingBuffer:

    def test_capacity_bounds_and_latest_first(self):
        recorder = FlightRecorder(capacity=4)
        for __ in range(10):
            recorder.record(make_record())
        assert len(recorder) == 4
        assert recorder.recorded == 10
        assert [r.seq for r in recorder.records()] == [10, 9, 8, 7]
        assert [r.seq for r in recorder.records(limit=2)] == [10, 9]

    def test_record_assigns_seq_and_timestamp(self):
        recorder = FlightRecorder()
        record = recorder.record(make_record())
        assert record.seq == 1
        assert record.ts  # ISO stamp filled in
        assert record.total_seconds == pytest.approx(0.011)

    def test_snapshots_every_interval(self):
        metrics = MetricsRegistry()
        recorder = FlightRecorder(snapshot_interval=2, metrics=metrics)
        for __ in range(5):
            recorder.record(make_record())
        snapshots = recorder.snapshots()
        assert [s["seq"] for s in snapshots] == [2, 4]
        assert all("registry" in s for s in snapshots)
        assert metrics.count("flight.records") == 5
        assert metrics.count("flight.snapshots") == 2

    @pytest.mark.parametrize("kwargs", [
        dict(capacity=0),
        dict(snapshot_interval=0),
        dict(watchdog_window=0),
        dict(watchdog_factor=1.0),
        dict(watchdog_min_samples=0),
    ])
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            FlightRecorder(**kwargs)


class TestWatchdog:

    def _recorder(self, **overrides):
        options = dict(watchdog_window=4, watchdog_min_samples=2,
                       watchdog_factor=2.0,
                       metrics=MetricsRegistry())
        options.update(overrides)
        return FlightRecorder(**options)

    def test_exact_p95_interpolates(self):
        assert _exact_p95([]) == 0.0
        assert _exact_p95([5.0]) == 5.0
        values = [float(v) for v in range(1, 101)]
        assert _exact_p95(values) == pytest.approx(95.05)

    def test_flags_injected_regression_once(self):
        recorder = self._recorder()
        for __ in range(4):
            recorder.record(make_record(execute_seconds=0.01))
        for __ in range(4):
            recorder.record(make_record(execute_seconds=0.10))
        findings = recorder.watchdog_check()
        assert len(findings) == 1
        finding = findings[0]
        assert isinstance(finding, WatchdogFinding)
        assert finding.fingerprint == "fp-a"
        assert finding.factor == pytest.approx(10.0, rel=0.01)
        assert finding.samples_before == 4
        assert finding.samples_after == 4
        assert recorder.metrics.count("flight.watchdog_findings") == 1
        # Same windows, second check: deduped, not re-flagged.
        assert recorder.watchdog_check() == []

    def test_steady_latency_not_flagged(self):
        recorder = self._recorder()
        for __ in range(8):
            recorder.record(make_record(execute_seconds=0.01))
        assert recorder.watchdog_check() == []

    def test_needs_evidence_on_both_sides(self):
        recorder = self._recorder()
        # Only one prior sample of fp-b: below min_samples, no verdict.
        recorder.record(make_record(execute_seconds=0.01))
        for __ in range(3):
            recorder.record(make_record("fp-b", execute_seconds=0.01))
        for __ in range(4):
            recorder.record(make_record("fp-b", execute_seconds=0.5))
        # fp-b has 4 trailing + 0 prior in the comparison windows once
        # the trailing window is all-slow; nothing may be flagged
        # without min_samples on the *before* side too.
        findings = recorder.watchdog_check()
        assert all(f.samples_before >= 2 for f in findings)

    def test_aborted_records_excluded(self):
        recorder = self._recorder()
        for __ in range(4):
            recorder.record(make_record(execute_seconds=0.01))
        for __ in range(4):
            recorder.record(make_record(execute_seconds=5.0,
                                        aborted=True,
                                        abort_reason="deadline"))
        # The slow records are aborts — their latency is the bound that
        # tripped, not the statement; no regression may be flagged.
        assert recorder.watchdog_check() == []


class TestExportAndReport:

    def test_export_jsonl_round_trips(self, tmp_path):
        recorder = FlightRecorder(snapshot_interval=2,
                                  metrics=MetricsRegistry())
        for index in range(5):
            recorder.record(make_record(execute_seconds=0.01 * (index + 1)))
        path = tmp_path / "flight.jsonl"
        lines = recorder.export_jsonl(str(path))
        assert lines == 5 + 2
        parsed = [json.loads(line)
                  for line in path.read_text().splitlines()]
        statements = [p for p in parsed if p["kind"] == "statement"]
        snapshots = [p for p in parsed if p["kind"] == "snapshot"]
        assert [p["seq"] for p in statements] == [1, 2, 3, 4, 5]
        assert len(snapshots) == 2
        assert all("registry" in p for p in snapshots)

    def test_report_payload_and_text(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record(make_record())
        recorder.record(make_record(aborted=True,
                                    abort_reason="deadline"))
        payload = recorder.report()
        assert payload["stats"]["size"] == 2
        assert payload["records"][0]["aborted"] is True
        text = format_flight_report(payload)
        assert "Flight recorder" in text
        assert "ABORTED (deadline)" in text

    def test_empty_report_text(self):
        text = format_flight_report(FlightRecorder().report())
        assert "(no statements recorded)" in text


class TestDatabaseIntegration:

    def test_statements_recorded_with_fields(self):
        db = build_mini_db(orders=40)
        result = db.run(SCAN_SQL, use_plan_cache=False)
        db.run(JOIN_SQL, use_plan_cache=False)
        records = db.flight.records()
        assert len(records) == 2
        latest, first = records
        assert first.statement_id == result.statement_id
        assert first.rows == len(result.rows)
        assert first.optimizer == result.optimizer_used
        assert first.executor_mode == result.executor_mode
        assert first.plan_hash == result.plan_hash
        assert first.execute_seconds == result.execute_seconds
        assert not first.aborted
        assert latest.seq == first.seq + 1
        text = db.flight_report_text()
        assert "Flight recorder" in text

    def test_aborted_statement_recorded(self):
        db = build_mini_db(orders=40)
        with pytest.raises(DeadlineExceededError):
            db.run(JOIN_SQL, use_plan_cache=False, timeout_seconds=0.0)
        record = db.flight.records()[0]
        assert record.aborted
        assert record.abort_reason == "deadline_exceeded"
        assert record.fingerprint

    def test_disabled_recorder(self):
        db = build_mini_db(
            orders=20,
            config=DatabaseConfig(flight_recorder_enabled=False))
        db.run(SCAN_SQL)
        assert db.flight is None
        with pytest.raises(ReproError):
            db.flight_report()
        with pytest.raises(ReproError):
            db.flight_export("/tmp/unused.jsonl")

    def test_flight_export_from_db(self, tmp_path):
        db = build_mini_db(orders=20)
        db.run(SCAN_SQL)
        path = tmp_path / "db_flight.jsonl"
        assert db.flight_export(str(path)) >= 1
        assert path.exists()

    def test_watchdog_feeds_advisor_end_to_end(self):
        """Acceptance: an injected p95 regression is flagged by the
        watchdog and surfaces as an advisor ``plan_regression``
        recommendation, whose apply purges the cached plans."""
        db = build_mini_db(
            orders=40,
            config=DatabaseConfig(flight_watchdog_window=4,
                                  flight_watchdog_min_samples=2))
        # Establish the fingerprint in the plan cache + workload repo.
        result = db.run(SCAN_SQL)
        fingerprint = db.flight.records()[0].fingerprint
        # Inject the regression: a prior window of fast runs, then a
        # trailing window 10x slower, as the recorder would see them.
        for __ in range(4):
            db.flight.record(make_record(fingerprint, 0.01,
                                         sql=SCAN_SQL,
                                         plan_hash=result.plan_hash))
        for __ in range(3):
            db.flight.record(make_record(fingerprint, 0.10,
                                         sql=SCAN_SQL,
                                         plan_hash=result.plan_hash))
        assert db.workload.unresolved_regressions() == []
        db.flight.record(make_record(fingerprint, 0.10, sql=SCAN_SQL,
                                     plan_hash=result.plan_hash))
        db._run_watchdog()
        regressions = db.workload.unresolved_regressions()
        assert len(regressions) == 1
        regression = regressions[0]
        assert regression.fingerprint == fingerprint
        # Same-plan slowdown: the watchdog saw latency, not a plan flip.
        assert regression.from_hash == regression.to_hash
        assert regression.factor == pytest.approx(10.0, rel=0.05)
        recs = [r for r in db.advisor.recommendations()
                if r.kind == "plan_regression"]
        assert len(recs) == 1 and recs[0].target == fingerprint
        actions = db.advisor.apply(kinds=("plan_regression",))
        assert len(actions) == 1
        assert "invalidated" in actions[0]["action"]
        assert db.workload.unresolved_regressions() == []
        # Dropping the cached plan forces a recompile next run.
        rerun = db.run(SCAN_SQL)
        assert rerun.plan_cache_hit is False

    def test_watchdog_findings_deduped_in_repository(self):
        db = build_mini_db(
            orders=20,
            config=DatabaseConfig(flight_watchdog_window=4,
                                  flight_watchdog_min_samples=2))
        for __ in range(4):
            db.flight.record(make_record("fp-x", 0.01))
        for __ in range(4):
            db.flight.record(make_record("fp-x", 0.2))
        db._run_watchdog()
        # More slow traffic, new window end: the recorder re-flags, but
        # the repository drops it while the first is unresolved.
        for __ in range(4):
            db.flight.record(make_record("fp-x", 0.2))
        db._run_watchdog()
        assert len(db.workload.unresolved_regressions()) == 1


class TestTopReport:

    def test_top_sections_render(self):
        db = build_mini_db(seed=7, orders=150,
                           config=DatabaseConfig(
                               complex_query_threshold=3,
                               batch_size=32,
                               parallel_min_table_rows=64))
        db.run(SCAN_SQL, use_plan_cache=False)
        db.run(SCAN_SQL, executor_workers=4, use_plan_cache=False)
        payload = db.top_data()
        assert payload["statements_total"] == 2
        assert payload["active_count"] == 0
        assert payload["hottest"], "workload repo should rank the scan"
        assert payload["workers"], "parallel utilization missing"
        assert payload["worker_skew"] is not None
        text = db.top(limit=5)
        assert "engine top" in text
        assert "active statements: (none)" in text
        assert "hottest fingerprints" in text
        assert "parallel workers" in text
        assert "skew: min" in text

    def test_top_before_any_statement(self):
        db = Database(DatabaseConfig())
        text = db.top()
        assert "statements: 0 total" in text
        assert "hottest fingerprints: (none recorded)" in text
        assert "parallel workers: (no parallel statement yet)" in text
