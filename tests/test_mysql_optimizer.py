"""Tests for the MySQL-style optimizer: plan shapes and skeletons.

The decisive reproduction properties (Section 1's weakness list) are
asserted structurally: left-deep plans only, ref-access preference over
hash joins whenever an index exists, and skeleton plans whose
best-position arrays drive refinement.
"""

import pytest

from repro.executor.plan import (
    AccessMethod,
    HashJoinNode,
    IndexLookupNode,
    IndexRangeScanNode,
    JoinKind,
    NestedLoopJoinNode,
    PlanNode,
    TableScanNode,
)
from repro.mysql_optimizer.optimizer import MySQLOptimizer
from repro.mysql_optimizer.refinement import PlanBuilder
from repro.mysql_optimizer.skeleton import JoinMethod
from repro.sql.parser import parse_statement
from repro.sql.prepare import prepare
from repro.sql.resolver import Resolver

from tests.conftest import build_mini_db


@pytest.fixture(scope="module")
def db():
    return build_mini_db(seed=3)


def skeleton_for(db, sql):
    stmt = parse_statement(sql)
    block, context = Resolver(db.catalog).resolve(stmt)
    prepare(block)
    plan = MySQLOptimizer(db.catalog).optimize(block, context)
    return plan, block, context


def plan_for(db, sql):
    skeleton, block, context = skeleton_for(db, sql)
    executor = PlanBuilder(skeleton, db.catalog, db.storage).build()
    return executor.top_plan


def nodes_of(plan_node, node_type):
    found = []

    def visit(node):
        if isinstance(node, node_type):
            found.append(node)
        for child in node.children():
            visit(child)

    if plan_node is not None:
        visit(plan_node)
    return found


class TestAccessPaths:
    def test_index_range_for_pk_predicate(self, db):
        plan = plan_for(db, """
            SELECT o_totalprice FROM orders
            WHERE o_orderkey BETWEEN 10 AND 20""")
        ranges = nodes_of(plan.root, IndexRangeScanNode)
        assert ranges and ranges[0].index_name == "PRIMARY"

    def test_table_scan_without_usable_index(self, db):
        plan = plan_for(db, """
            SELECT o_orderkey FROM orders WHERE o_totalprice > 100""")
        assert nodes_of(plan.root, TableScanNode)

    def test_point_lookup_via_unique_index(self, db):
        plan = plan_for(db,
                        "SELECT o_totalprice FROM orders "
                        "WHERE o_orderkey = 5")
        ranges = nodes_of(plan.root, IndexRangeScanNode)
        assert ranges and ranges[0].low == ranges[0].high == (5,)


class TestJoinPlanning:
    def test_ref_access_preferred_with_index(self, db):
        # MySQL favors index nested-loop joins (Section 3.1).
        plan = plan_for(db, """
            SELECT c_name, o_totalprice FROM customer, orders
            WHERE c_custkey = o_custkey AND c_segment = 'GOLD'""")
        lookups = nodes_of(plan.root, IndexLookupNode)
        assert lookups, "expected an index nested-loop join"
        assert not nodes_of(plan.root, HashJoinNode)

    def test_hash_join_only_without_index(self, db):
        # Join on non-indexed columns: executed as hash join (MySQL 8.0
        # behaviour) even though the search never costed it.
        plan = plan_for(db, """
            SELECT COUNT(*) FROM customer c1, customer c2
            WHERE c1.c_name = c2.c_name""")
        assert nodes_of(plan.root, HashJoinNode)

    def test_plans_are_left_deep(self, db):
        plan = plan_for(db, """
            SELECT COUNT(*) FROM customer, orders, lineitem, part
            WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey
              AND l_partkey = p_partkey""")
        for join in nodes_of(plan.root, (NestedLoopJoinNode, HashJoinNode)):
            inner = join.inner if isinstance(join, NestedLoopJoinNode) \
                else join.build
            # Left-deep: the inner/build side is always a single leaf.
            assert not nodes_of(inner, (NestedLoopJoinNode, HashJoinNode))

    def test_driving_table_is_most_selective(self, db):
        skeleton, block, __ = skeleton_for(db, """
            SELECT COUNT(*) FROM customer, orders
            WHERE c_custkey = o_custkey AND c_custkey = 7""")
        first = skeleton.skeleton_for(block).positions[0]
        entry = block.context.entry(first.entry_id)
        assert entry.alias == "customer"

    def test_semijoin_positions_are_contiguous(self, db):
        skeleton, block, __ = skeleton_for(db, """
            SELECT o_orderkey FROM orders
            WHERE EXISTS (SELECT * FROM lineitem
                          WHERE l_orderkey = o_orderkey
                            AND l_quantity > 10)""")
        positions = skeleton.skeleton_for(block).positions
        nest_flags = [p.nest_id is not None for p in positions]
        # once the nest starts it runs to a contiguous end
        if True in nest_flags:
            start = nest_flags.index(True)
            assert all(nest_flags[start:]) or \
                not any(nest_flags[start + nest_flags[start:].index(False):])

    def test_left_join_never_drives(self, db):
        skeleton, block, __ = skeleton_for(db, """
            SELECT c_custkey FROM customer
            LEFT JOIN orders ON c_custkey = o_custkey
            WHERE c_acctbal IS NOT NULL""")
        first = skeleton.skeleton_for(block).positions[0]
        entry = block.context.entry(first.entry_id)
        assert entry.alias == "customer"

    def test_estimates_recorded_in_skeleton(self, db):
        skeleton, block, __ = skeleton_for(db, """
            SELECT COUNT(*) FROM customer, orders
            WHERE c_custkey = o_custkey""")
        for position in skeleton.skeleton_for(block).positions:
            assert position.cost > 0
            assert position.fanout > 0


class TestSkeletonStructure:
    def test_every_block_gets_a_skeleton(self, db):
        skeleton, block, __ = skeleton_for(db, """
            SELECT o_orderkey FROM orders
            WHERE o_totalprice > (SELECT AVG(o_totalprice) FROM orders)""")
        assert len(skeleton.blocks) == 2

    def test_origin_is_mysql(self, db):
        skeleton, __, __ = skeleton_for(db, "SELECT COUNT(*) FROM orders")
        assert skeleton.origin == "mysql"

    def test_no_bushy_branches_from_mysql(self, db):
        # Weakness (1): "It generates only left-deep join plans".
        skeleton, block, __ = skeleton_for(db, """
            SELECT COUNT(*) FROM customer, orders, lineitem, part
            WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey
              AND l_partkey = p_partkey""")
        for position in skeleton.skeleton_for(block).positions:
            assert not position.is_branch
