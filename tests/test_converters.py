"""Tests for the two bridge tree converters (Sections 4.1 and 4.2)."""

import pytest

from repro.bridge.metadata_provider import MySQLMetadataProvider
from repro.bridge.parse_tree_converter import ParseTreeConverter
from repro.bridge.plan_converter import OrcaPlanConverter
from repro.errors import OrcaFallbackError
from repro.mysql_optimizer.skeleton import JoinMethod
from repro.orca.joinorder import JoinSearchMode, SubEstimates
from repro.orca.mdcache import MDAccessor
from repro.orca.optimizer import OrcaConfig, OrcaOptimizer
from repro.selectivity import SelectivityEstimator
from repro.sql import ast
from repro.sql.blocks import NestKind
from repro.sql.parser import parse_statement
from repro.sql.prepare import prepare
from repro.sql.resolver import Resolver

from tests.conftest import build_mini_db


@pytest.fixture(scope="module")
def db():
    return build_mini_db(seed=8, orders=200)


def convert(db, sql):
    stmt = parse_statement(sql)
    block, context = Resolver(db.catalog).resolve(stmt)
    prepare(block)
    provider = MySQLMetadataProvider(db.catalog)
    accessor = MDAccessor(provider)
    converter = ParseTreeConverter(accessor)
    return converter.convert_block(block), block, context, converter


class TestParseTreeConverter:
    def test_predicate_segregation_q4_style(self, db):
        # The Listing 3 -> Listing 4 transformation: local predicates move
        # onto the gets, the join condition stays at the (semi) join.
        logical, block, __, __ = convert(db, """
            SELECT o_priority, COUNT(*) FROM orders
            WHERE o_totalprice > 100
              AND EXISTS (SELECT * FROM lineitem
                          WHERE l_orderkey = o_orderkey
                            AND l_commitdate < l_receiptdate)
            GROUP BY o_priority""")
        orders_unit = logical.core.units[0]
        assert len(orders_unit.conjuncts) == 1  # o_totalprice > 100
        assert len(logical.semi_joins) == 1
        nest = logical.semi_joins[0]
        assert nest.kind is NestKind.SEMI
        # The lineitem-local predicate was segregated onto its get.
        assert len(nest.inners[0].conjuncts) == 1
        # The join equality bridges the nest.
        assert len(nest.conjuncts) == 1

    def test_cross_conjuncts_in_core(self, db):
        logical, __, __, __ = convert(db, """
            SELECT 1 FROM customer, orders
            WHERE c_custkey = o_custkey AND c_segment = 'GOLD'""")
        assert len(logical.core.conjuncts) == 1
        assert len(logical.core.units) == 2

    def test_table_descriptors_carry_table_list_pointer(self, db):
        logical, block, __, __ = convert(
            db, "SELECT 1 FROM orders, customer "
                "WHERE c_custkey = o_custkey")
        for unit in logical.core.units:
            assert unit.descriptor.entry in block.entries
            assert unit.descriptor.entry.block is block

    def test_descriptors_get_oids_from_provider(self, db):
        logical, __, __, converter = convert(
            db, "SELECT 1 FROM orders, customer "
                "WHERE c_custkey = o_custkey")
        mdids = {unit.descriptor.mdid for unit in logical.core.units}
        assert len(mdids) == 2
        assert all(mdid >= 1_000_000 for mdid in mdids)

    def test_expressions_annotated_with_oids(self, db):
        __, __, __, converter = convert(
            db, "SELECT 1 FROM orders WHERE o_priority = 'x'")
        assert converter.expression_oids  # comparisons got OIDs
        for oid, commutator, inverse in converter.expression_oids.values():
            assert oid != 0

    def test_left_join_spec(self, db):
        logical, __, __, __ = convert(db, """
            SELECT c_custkey FROM customer
            LEFT JOIN orders ON c_custkey = o_custkey
            WHERE c_acctbal IS NULL""")
        assert len(logical.outer_joins) == 1
        assert len(logical.outer_joins[0].on_conjuncts) == 1
        # IS NULL on the preserved side is residual-free; the residual
        # holds nothing referencing the LEFT inner.
        assert len(logical.core.units) == 1

    def test_where_on_left_inner_goes_residual(self, db):
        logical, __, __, __ = convert(db, """
            SELECT c_custkey FROM customer
            LEFT JOIN orders ON c_custkey = o_custkey
            WHERE o_totalprice IS NULL""")
        assert len(logical.residual.conjuncts) == 1

    def test_aggregation_operator(self, db):
        logical, __, __, __ = convert(db, """
            SELECT o_custkey, SUM(o_totalprice) FROM orders
            GROUP BY o_custkey""")
        assert logical.agg is not None
        assert len(logical.agg.group_exprs) == 1
        assert len(logical.agg.agg_calls) == 1

    def test_limit_and_order(self, db):
        logical, __, __, __ = convert(db, """
            SELECT o_orderkey FROM orders ORDER BY o_totalprice LIMIT 7""")
        assert logical.limit.limit == 7
        assert len(logical.limit.order_items) == 1


def full_orca_plan(db, sql, mode=JoinSearchMode.EXHAUSTIVE2):
    stmt = parse_statement(sql)
    block, context = Resolver(db.catalog).resolve(stmt)
    prepare(block)
    provider = MySQLMetadataProvider(db.catalog)
    accessor = MDAccessor(provider)
    converter = ParseTreeConverter(accessor)
    estimator = SelectivityEstimator(accessor, use_histograms=True)
    optimizer = OrcaOptimizer(estimator, OrcaConfig(search=mode))
    logical = converter.convert_block(block)
    block_plan = optimizer.optimize_block(logical, SubEstimates())
    return block_plan, block, context


class TestPlanConverter:
    def test_positions_cover_all_entries(self, db):
        block_plan, block, context = full_orca_plan(db, """
            SELECT COUNT(*) FROM customer, orders, lineitem
            WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey""")
        skeleton = OrcaPlanConverter(context).convert(
            {block.block_id: block_plan}, block)
        positions = skeleton.skeleton_for(block).positions
        covered = set()
        for position in positions:
            covered.update(position.all_entry_ids())
        assert covered == {e.entry_id for e in block.entries}

    def test_origin_is_orca(self, db):
        block_plan, block, context = full_orca_plan(
            db, "SELECT COUNT(*) FROM orders, customer "
                "WHERE o_custkey = c_custkey")
        skeleton = OrcaPlanConverter(context).convert(
            {block.block_id: block_plan}, block)
        assert skeleton.origin == "orca"

    def test_costs_copied_from_orca(self, db):
        # Section 4.2.2: "cost and cardinality estimations ... are copied
        # over to the MySQL side".
        block_plan, block, context = full_orca_plan(
            db, "SELECT COUNT(*) FROM orders, customer "
                "WHERE o_custkey = c_custkey")
        skeleton = OrcaPlanConverter(context).convert(
            {block.block_id: block_plan}, block)
        for position in skeleton.skeleton_for(block).positions:
            assert position.cost > 0

    def test_abort_when_block_structure_changed(self, db):
        # Section 4.2.1: "if the first pass discovers that Orca has
        # changed the query block structure altogether, Orca optimization
        # is aborted".  Simulated by grafting a leaf from another block.
        plan_a, block_a, context = full_orca_plan(
            db, "SELECT COUNT(*) FROM orders, customer "
                "WHERE o_custkey = c_custkey")
        plan_b, block_b, context_b = full_orca_plan(
            db, "SELECT COUNT(*) FROM lineitem, part "
                "WHERE l_partkey = p_partkey")
        # Tamper: pretend plan_b's tree belongs to block_a.
        plan_b.block = block_a
        with pytest.raises(OrcaFallbackError):
            OrcaPlanConverter(context_b).convert(
                {block_a.block_id: plan_b}, block_a)

    def test_hash_join_build_side_becomes_position(self, db):
        # The build/probe flip of Section 7, lesson 2: the best-position
        # entry for a hash join is its build side.
        block_plan, block, context = full_orca_plan(db, """
            SELECT COUNT(*) FROM orders, lineitem
            WHERE o_orderkey = l_orderkey""")
        from repro.orca.operators import PhysicalHashJoin

        root = block_plan.root
        while root is not None and not isinstance(root, PhysicalHashJoin):
            children = root.children()
            root = children[0] if children else None
        if root is None:
            pytest.skip("optimizer did not pick a hash join here")
        build_entry = next(iter(root.build.leaves())).descriptor.entry
        skeleton = OrcaPlanConverter(context).convert(
            {block.block_id: block_plan}, block)
        positions = skeleton.skeleton_for(block).positions
        hash_positions = [p for p in positions
                          if p.join_method is JoinMethod.HASH]
        assert any(build_entry.entry_id in p.all_entry_ids()
                   for p in hash_positions)

    def test_semi_positions_keep_nest_ids(self, db):
        block_plan, block, context = full_orca_plan(db, """
            SELECT c_custkey FROM customer
            WHERE EXISTS (SELECT * FROM orders
                          WHERE o_custkey = c_custkey)""")
        skeleton = OrcaPlanConverter(context).convert(
            {block.block_id: block_plan}, block)
        positions = skeleton.skeleton_for(block).positions
        assert any(p.nest_id is not None for p in positions)
