"""Tests for the storage engine: heaps, ordered indexes, access paths."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog, Column, Index, TableSchema
from repro.errors import StorageError
from repro.mysql_types import MySQLType
from repro.storage import StorageEngine


def make_engine():
    catalog = Catalog()
    engine = StorageEngine(catalog)
    engine.create_table(TableSchema("t", [
        Column.of("k", MySQLType.LONGLONG, nullable=False),
        Column.of("grp", MySQLType.LONG),
        Column.of("val", MySQLType.DOUBLE),
    ], [Index("PRIMARY", ("k",), primary=True),
        Index("grp_idx", ("grp",)),
        Index("grp_val", ("grp", "val"))]))
    return engine


class TestHeap:
    def test_insert_and_scan(self):
        engine = make_engine()
        engine.load_rows("t", [(1, 10, 1.0), (2, 20, 2.0)])
        assert list(engine.table_scan("t")) == [(1, 10, 1.0), (2, 20, 2.0)]

    def test_scan_counts_rows(self):
        engine = make_engine()
        engine.load_rows("t", [(i, i % 3, float(i)) for i in range(10)])
        engine.counters.reset()
        list(engine.table_scan("t"))
        assert engine.counters.rows_scanned == 10

    def test_wrong_row_width_rejected(self):
        engine = make_engine()
        with pytest.raises(StorageError):
            engine.load_rows("t", [(1, 2)])

    def test_unknown_table(self):
        engine = make_engine()
        with pytest.raises(StorageError):
            engine.heap("nope")


class TestIndexLookup:
    def test_point_lookup(self):
        engine = make_engine()
        engine.load_rows("t", [(i, i % 3, float(i)) for i in range(30)])
        rows = engine.index_lookup_rows("t", "PRIMARY", (7,))
        assert rows == [(7, 1, 7.0)]

    def test_lookup_counts_access(self):
        engine = make_engine()
        engine.load_rows("t", [(i, i % 3, float(i)) for i in range(30)])
        engine.counters.reset()
        engine.index_lookup_rows("t", "grp_idx", (1,))
        assert engine.counters.index_lookups == 1
        assert engine.counters.index_rows_read == 10

    def test_lookup_with_null_key_is_empty(self):
        engine = make_engine()
        engine.load_rows("t", [(1, None, 1.0), (2, 5, 2.0)])
        assert engine.index_lookup_rows("t", "grp_idx", (None,)) == []

    def test_null_keys_not_indexed(self):
        engine = make_engine()
        engine.load_rows("t", [(1, None, 1.0), (2, 5, 2.0)])
        index = engine.index("t", "grp_idx")
        assert index.entry_count == 1

    def test_prefix_lookup_on_composite(self):
        engine = make_engine()
        engine.load_rows("t", [(i, i % 3, float(i)) for i in range(9)])
        rows = engine.index_lookup_rows("t", "grp_val", (0,))
        assert sorted(r[0] for r in rows) == [0, 3, 6]

    def test_missing_index(self):
        engine = make_engine()
        with pytest.raises(StorageError):
            engine.index("t", "nope")


class TestRangeScan:
    def test_inclusive_range(self):
        engine = make_engine()
        engine.load_rows("t", [(i, i, float(i)) for i in range(20)])
        rows = list(engine.index_range_rows("t", "PRIMARY", (5,), (8,)))
        assert [r[0] for r in rows] == [5, 6, 7, 8]

    def test_exclusive_bounds(self):
        engine = make_engine()
        engine.load_rows("t", [(i, i, float(i)) for i in range(20)])
        rows = list(engine.index_range_rows("t", "PRIMARY", (5,), (8,),
                                            low_inclusive=False,
                                            high_inclusive=False))
        assert [r[0] for r in rows] == [6, 7]

    def test_unbounded_low(self):
        engine = make_engine()
        engine.load_rows("t", [(i, i, float(i)) for i in range(10)])
        rows = list(engine.index_range_rows("t", "PRIMARY", None, (2,)))
        assert [r[0] for r in rows] == [0, 1, 2]

    def test_ordered_scan(self):
        engine = make_engine()
        engine.load_rows("t", [(3, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)])
        rows = list(engine.index_ordered_rows("t", "PRIMARY"))
        assert [r[0] for r in rows] == [1, 2, 3]

    def test_ordered_scan_descending(self):
        engine = make_engine()
        engine.load_rows("t", [(3, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)])
        rows = list(engine.index_ordered_rows("t", "PRIMARY",
                                              descending=True))
        assert [r[0] for r in rows] == [3, 2, 1]

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=0,
                    max_size=60),
           st.integers(min_value=0, max_value=50),
           st.integers(min_value=0, max_value=50))
    @settings(max_examples=100)
    def test_range_scan_matches_filter(self, keys, low, high):
        """Property: index range scans agree with a filtered full scan."""
        if low > high:
            low, high = high, low
        catalog = Catalog()
        engine = StorageEngine(catalog)
        engine.create_table(TableSchema("p", [
            Column.of("a", MySQLType.LONG, nullable=False),
            Column.of("b", MySQLType.LONG, nullable=False),
        ], [Index("a_idx", ("a",))]))
        engine.load_rows("p", [(k, i) for i, k in enumerate(keys)])
        via_index = sorted(
            engine.index_range_rows("p", "a_idx", (low,), (high,)))
        via_scan = sorted(row for row in engine.table_scan("p")
                          if low <= row[0] <= high)
        assert via_index == via_scan


class TestAnalyze:
    def test_analyze_builds_statistics(self):
        engine = make_engine()
        engine.load_rows("t", [(i, i % 5, float(i % 7)) for i in range(100)])
        stats = engine.analyze_table("t")
        assert stats.row_count == 100
        assert stats.column("grp").distinct_count == 5
        assert stats.column("k").unique
        assert stats.column("k").histogram is not None

    def test_analyze_all(self):
        engine = make_engine()
        engine.load_rows("t", [(1, 1, 1.0)])
        engine.analyze_all()
        assert engine.catalog.statistics("t").row_count == 1

    def test_page_count(self):
        engine = make_engine()
        engine.load_rows("t", [(i, 0, 0.0) for i in range(200)])
        assert engine.page_count("t") >= 3
