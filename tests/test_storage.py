"""Tests for the storage engine: heaps, ordered indexes, access paths."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog, Column, Index, TableSchema
from repro.errors import StorageError
from repro.mysql_types import MySQLType
from repro.storage import StorageEngine


def make_engine():
    catalog = Catalog()
    engine = StorageEngine(catalog)
    engine.create_table(TableSchema("t", [
        Column.of("k", MySQLType.LONGLONG, nullable=False),
        Column.of("grp", MySQLType.LONG),
        Column.of("val", MySQLType.DOUBLE),
    ], [Index("PRIMARY", ("k",), primary=True),
        Index("grp_idx", ("grp",)),
        Index("grp_val", ("grp", "val"))]))
    return engine


class TestHeap:
    def test_insert_and_scan(self):
        engine = make_engine()
        engine.load_rows("t", [(1, 10, 1.0), (2, 20, 2.0)])
        assert list(engine.table_scan("t")) == [(1, 10, 1.0), (2, 20, 2.0)]

    def test_scan_counts_rows(self):
        engine = make_engine()
        engine.load_rows("t", [(i, i % 3, float(i)) for i in range(10)])
        engine.counters.reset()
        list(engine.table_scan("t"))
        assert engine.counters.rows_scanned == 10

    def test_wrong_row_width_rejected(self):
        engine = make_engine()
        with pytest.raises(StorageError):
            engine.load_rows("t", [(1, 2)])

    def test_unknown_table(self):
        engine = make_engine()
        with pytest.raises(StorageError):
            engine.heap("nope")


class TestIndexLookup:
    def test_point_lookup(self):
        engine = make_engine()
        engine.load_rows("t", [(i, i % 3, float(i)) for i in range(30)])
        rows = engine.index_lookup_rows("t", "PRIMARY", (7,))
        assert rows == [(7, 1, 7.0)]

    def test_lookup_counts_access(self):
        engine = make_engine()
        engine.load_rows("t", [(i, i % 3, float(i)) for i in range(30)])
        engine.counters.reset()
        engine.index_lookup_rows("t", "grp_idx", (1,))
        assert engine.counters.index_lookups == 1
        assert engine.counters.index_rows_read == 10

    def test_lookup_with_null_key_is_empty(self):
        engine = make_engine()
        engine.load_rows("t", [(1, None, 1.0), (2, 5, 2.0)])
        assert engine.index_lookup_rows("t", "grp_idx", (None,)) == []

    def test_null_keys_not_indexed(self):
        engine = make_engine()
        engine.load_rows("t", [(1, None, 1.0), (2, 5, 2.0)])
        index = engine.index("t", "grp_idx")
        assert index.entry_count == 1

    def test_prefix_lookup_on_composite(self):
        engine = make_engine()
        engine.load_rows("t", [(i, i % 3, float(i)) for i in range(9)])
        rows = engine.index_lookup_rows("t", "grp_val", (0,))
        assert sorted(r[0] for r in rows) == [0, 3, 6]

    def test_missing_index(self):
        engine = make_engine()
        with pytest.raises(StorageError):
            engine.index("t", "nope")


class TestRangeScan:
    def test_inclusive_range(self):
        engine = make_engine()
        engine.load_rows("t", [(i, i, float(i)) for i in range(20)])
        rows = list(engine.index_range_rows("t", "PRIMARY", (5,), (8,)))
        assert [r[0] for r in rows] == [5, 6, 7, 8]

    def test_exclusive_bounds(self):
        engine = make_engine()
        engine.load_rows("t", [(i, i, float(i)) for i in range(20)])
        rows = list(engine.index_range_rows("t", "PRIMARY", (5,), (8,),
                                            low_inclusive=False,
                                            high_inclusive=False))
        assert [r[0] for r in rows] == [6, 7]

    def test_unbounded_low(self):
        engine = make_engine()
        engine.load_rows("t", [(i, i, float(i)) for i in range(10)])
        rows = list(engine.index_range_rows("t", "PRIMARY", None, (2,)))
        assert [r[0] for r in rows] == [0, 1, 2]

    def test_ordered_scan(self):
        engine = make_engine()
        engine.load_rows("t", [(3, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)])
        rows = list(engine.index_ordered_rows("t", "PRIMARY"))
        assert [r[0] for r in rows] == [1, 2, 3]

    def test_ordered_scan_descending(self):
        engine = make_engine()
        engine.load_rows("t", [(3, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)])
        rows = list(engine.index_ordered_rows("t", "PRIMARY",
                                              descending=True))
        assert [r[0] for r in rows] == [3, 2, 1]

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=0,
                    max_size=60),
           st.integers(min_value=0, max_value=50),
           st.integers(min_value=0, max_value=50))
    @settings(max_examples=100)
    def test_range_scan_matches_filter(self, keys, low, high):
        """Property: index range scans agree with a filtered full scan."""
        if low > high:
            low, high = high, low
        catalog = Catalog()
        engine = StorageEngine(catalog)
        engine.create_table(TableSchema("p", [
            Column.of("a", MySQLType.LONG, nullable=False),
            Column.of("b", MySQLType.LONG, nullable=False),
        ], [Index("a_idx", ("a",))]))
        engine.load_rows("p", [(k, i) for i, k in enumerate(keys)])
        via_index = sorted(
            engine.index_range_rows("p", "a_idx", (low,), (high,)))
        via_scan = sorted(row for row in engine.table_scan("p")
                          if low <= row[0] <= high)
        assert via_index == via_scan


class TestAnalyze:
    def test_analyze_builds_statistics(self):
        engine = make_engine()
        engine.load_rows("t", [(i, i % 5, float(i % 7)) for i in range(100)])
        stats = engine.analyze_table("t")
        assert stats.row_count == 100
        assert stats.column("grp").distinct_count == 5
        assert stats.column("k").unique
        assert stats.column("k").histogram is not None

    def test_analyze_all(self):
        engine = make_engine()
        engine.load_rows("t", [(1, 1, 1.0)])
        engine.analyze_all()
        assert engine.catalog.statistics("t").row_count == 1

    def test_page_count(self):
        engine = make_engine()
        engine.load_rows("t", [(i, 0, 0.0) for i in range(200)])
        assert engine.page_count("t") >= 3


# -- native column store ----------------------------------------------------------


def make_column_engine(batch_size=8, enabled=True):
    catalog = Catalog()
    engine = StorageEngine(catalog, batch_size=batch_size,
                           columnstore_enabled=enabled)
    engine.create_table(TableSchema("t", [
        Column.of("k", MySQLType.LONGLONG, nullable=False),
        Column.of("grp", MySQLType.LONG),
        Column.of("val", MySQLType.DOUBLE),
    ], [Index("PRIMARY", ("k",), primary=True)]))
    return engine


class TestColumnStoreChunking:
    def test_empty_table(self):
        engine = make_column_engine()
        store = engine.store("t")
        assert store.row_count == 0
        assert store.chunks == []
        assert list(engine.table_scan("t")) == []
        assert list(engine.table_scan_batches("t", 8)) == []

    def test_single_row(self):
        engine = make_column_engine()
        engine.load_rows("t", [(1, 10, 1.5)])
        store = engine.store("t")
        assert len(store.chunks) == 1
        assert store.chunks[0].rows == [(1, 10, 1.5)]
        assert store.chunks[0].columns == [[1], [10], [1.5]]
        assert [list(c) for c in engine.table_scan_batches("t", 8)] \
            == [[(1, 10, 1.5)]]

    def test_exact_multiple_of_batch_size(self):
        engine = make_column_engine(batch_size=8)
        rows = [(i, i % 3, float(i)) for i in range(24)]
        engine.load_rows("t", rows)
        store = engine.store("t")
        assert [len(chunk.rows) for chunk in store.chunks] == [8, 8, 8]
        chunks = [list(c) for c in engine.table_scan_batches("t", 8)]
        assert [row for chunk in chunks for row in chunk] == rows

    def test_partial_last_chunk_fills_first(self):
        engine = make_column_engine(batch_size=8)
        engine.load_rows("t", [(i, 0, 0.0) for i in range(5)])
        engine.load_rows("t", [(i, 0, 0.0) for i in range(5, 12)])
        store = engine.store("t")
        assert [len(chunk.rows) for chunk in store.chunks] == [8, 4]
        assert store.row_count == 12

    def test_all_null_column_both_scan_paths(self):
        engine = make_column_engine(batch_size=4)
        rows = [(i, None, None) for i in range(10)]
        engine.load_rows("t", rows)
        chunk = engine.store("t").chunks[0]
        assert chunk.mins[1] is None and chunk.maxs[1] is None
        assert chunk.null_count(1) == 4
        assert list(engine.table_scan("t")) == rows
        batched = [row for c in engine.table_scan_batches("t", 4)
                   for row in c]
        assert batched == rows


class TestZoneMaps:
    def test_incremental_min_max(self):
        engine = make_column_engine(batch_size=4)
        engine.load_rows("t", [(i, i * 10, float(i)) for i in range(8)])
        first, second = engine.store("t").chunks
        assert (first.mins[0], first.maxs[0]) == (0, 3)
        assert (second.mins[1], second.maxs[1]) == (40, 70)

    def test_scan_skips_out_of_range_chunks(self):
        engine = make_column_engine(batch_size=4)
        engine.load_rows("t", [(i, i, float(i)) for i in range(16)])
        engine.counters.reset()
        rows = list(engine.table_scan("t", [("cmp", 0, "<", 4)]))
        # Skipped chunks still charge rows_scanned (the serial scan
        # contract) but are never materialised into output.
        assert engine.counters.chunks_skipped == 3
        assert engine.counters.rows_scanned == 16
        assert rows == [(i, i, float(i)) for i in range(4)]

    def test_batch_scan_skips_and_counts(self):
        engine = make_column_engine(batch_size=4)
        engine.load_rows("t", [(i, i, float(i)) for i in range(16)])
        engine.counters.reset()
        chunks = [list(c) for c in
                  engine.table_scan_batches("t", 4, [("cmp", 0, ">=", 12)])]
        assert engine.counters.chunks_skipped == 3
        assert [row for c in chunks for row in c] \
            == [(i, i, float(i)) for i in range(12, 16)]

    def test_mismatched_batch_size_disables_store_path(self):
        engine = make_column_engine(batch_size=4)
        engine.load_rows("t", [(i, i, float(i)) for i in range(16)])
        engine.counters.reset()
        chunks = [list(c) for c in
                  engine.table_scan_batches("t", 6, [("cmp", 0, "<", 0)])]
        # Chunking misaligned with the requested batch size: the scan
        # falls back to the heap and zone maps cannot apply.
        assert engine.counters.chunks_skipped == 0
        assert sum(len(c) for c in chunks) == 16

    def test_null_predicates(self):
        engine = make_column_engine(batch_size=4)
        engine.load_rows("t", [(i, None if i < 4 else i, 0.0)
                               for i in range(8)])
        engine.counters.reset()
        list(engine.table_scan("t", [("null", 1, False)]))
        assert engine.counters.chunks_skipped == 1  # all-set chunk kept
        engine.counters.reset()
        list(engine.table_scan("t", [("null", 1, True)]))  # IS NOT NULL
        assert engine.counters.chunks_skipped == 1

    def test_in_list_skips_out_of_range_chunks(self):
        engine = make_column_engine(batch_size=4)
        engine.load_rows("t", [(i, i, float(i)) for i in range(16)])
        engine.counters.reset()
        rows = list(engine.table_scan("t", [("in", 0, [2, 13])]))
        # Values 2 and 13 live in chunks 0 and 3; chunks 1-2 are dead.
        assert engine.counters.chunks_skipped == 2
        assert rows == [(i, i, float(i)) for i in range(16)
                        if i // 4 in (0, 3)]

    def test_not_in_skips_constant_chunks_only(self):
        engine = make_column_engine(batch_size=4)
        # Chunk 0 constant on 7, chunk 1 constant on 9, chunk 2 mixed.
        engine.load_rows("t", [(i, 7, 0.0) for i in range(4)]
                         + [(i, 9, 0.0) for i in range(4, 8)]
                         + [(i, i, 0.0) for i in range(8, 12)])
        engine.counters.reset()
        list(engine.table_scan("t", [("notin", 1, [7, 8])]))
        # Only the all-7 chunk is provably dead: the all-9 chunk's
        # value is not listed, and the mixed chunk is not constant
        # (some of its rows survive NOT IN).
        assert engine.counters.chunks_skipped == 1
        engine.counters.reset()
        batched = [row for c in engine.table_scan_batches(
            "t", 4, [("notin", 1, [7, 9])]) for row in c]
        assert engine.counters.chunks_skipped == 2
        assert batched == [(i, i, 0.0) for i in range(8, 12)]

    def test_not_between_skips_contained_chunks(self):
        engine = make_column_engine(batch_size=4)
        engine.load_rows("t", [(i, i, float(i)) for i in range(16)])
        engine.counters.reset()
        rows = list(engine.table_scan("t", [("notbetween", 0, 4, 11)]))
        # Chunks [4..7] and [8..11] lie wholly inside the rejected
        # window; the boundary chunks straddle it and must be kept.
        assert engine.counters.chunks_skipped == 2
        assert rows == [(i, i, float(i)) for i in range(16)
                        if i // 4 in (0, 3)]
        engine.counters.reset()
        batched = [row for c in engine.table_scan_batches(
            "t", 4, [("notbetween", 0, 3, 12)]) for row in c]
        assert engine.counters.chunks_skipped == 2
        assert [r[0] for r in batched] == [i for i in range(16)
                                           if i // 4 in (0, 3)]

    def test_analyze_rebuilds_zone_maps(self):
        engine = make_column_engine(batch_size=4)
        engine.load_rows("t", [(i, i, float(i)) for i in range(8)])
        store = engine.store("t")
        store.chunks[0].mins[0] = -999  # simulate drift
        engine.analyze_table("t")
        assert store.chunks[0].mins[0] == 0

    def test_replace_rows_rebuilds_store(self):
        engine = make_column_engine(batch_size=4)
        engine.load_rows("t", [(i, i, float(i)) for i in range(8)])
        engine.replace_rows("t", [(99, 1, 1.0)])
        store = engine.store("t")
        assert store.row_count == 1
        assert store.chunks[0].mins[0] == 99

    def test_store_self_heals_on_heap_drift(self):
        engine = make_column_engine(batch_size=4)
        engine.load_rows("t", [(i, i, float(i)) for i in range(8)])
        # Mutate the heap behind the store's back (as row-level DML
        # paths that bypass load_rows/replace_rows would).
        engine.heap("t").rows.append((100, 100, 100.0))
        store = engine.store("t")
        assert store.row_count == 9
        assert store.chunks[-1].maxs[0] == 100

    def test_disabled_columnstore_still_scans(self):
        engine = make_column_engine(batch_size=4, enabled=False)
        rows = [(i, i, float(i)) for i in range(10)]
        engine.load_rows("t", rows)
        assert engine.store("t") is None
        assert list(engine.table_scan("t", [("cmp", 0, "<", 2)])) == rows
        assert [row for c in engine.table_scan_batches("t", 4)
                for row in c] == rows
        assert engine.counters.chunks_skipped == 0
