"""Tests for EXPLAIN ANALYZE: actual per-operator row counts."""

import re

import pytest

from tests.conftest import build_mini_db


@pytest.fixture(scope="module")
def db():
    return build_mini_db(seed=61, orders=100)


def actual_rows(text):
    return [int(m) for m in re.findall(r"actual rows=(\d+)", text)]


class TestExplainAnalyze:
    def test_header(self, db):
        text = db.explain_analyze("SELECT COUNT(*) FROM orders",
                                  optimizer="mysql")
        assert text.startswith("EXPLAIN ANALYZE")

    def test_orca_header(self, db):
        text = db.explain_analyze("""
            SELECT COUNT(*) FROM orders, customer, lineitem
            WHERE o_custkey = c_custkey AND l_orderkey = o_orderkey""",
            optimizer="orca")
        assert text.startswith("EXPLAIN (ORCA) ANALYZE")

    def test_every_operator_annotated(self, db):
        text = db.explain_analyze(
            "SELECT o_status, COUNT(*) FROM orders GROUP BY o_status",
            optimizer="mysql")
        operator_lines = [line for line in text.splitlines()
                          if "-> " in line and "Materialize" not in line]
        annotated = [line for line in operator_lines
                     if "actual rows=" in line]
        assert len(annotated) == len(operator_lines)

    def test_scan_count_matches_table(self, db):
        text = db.explain_analyze("SELECT o_orderkey FROM orders",
                                  optimizer="mysql")
        counts = actual_rows(text)
        assert db.storage.heap("orders").row_count in counts

    def test_filter_reduces_actuals(self, db):
        text = db.explain_analyze(
            "SELECT COUNT(*) FROM orders WHERE o_totalprice > 9000",
            optimizer="mysql")
        lines = text.splitlines()
        scan_line = next(line for line in lines if "Table scan" in line)
        scanned = actual_rows(scan_line)[0]
        truth = sum(1 for o in db.storage.heap("orders").rows
                    if o[3] > 9000)
        assert scanned == truth

    def test_aggregate_emits_group_count(self, db):
        text = db.explain_analyze(
            "SELECT o_status, COUNT(*) FROM orders GROUP BY o_status",
            optimizer="mysql")
        agg_line = next(line for line in text.splitlines()
                        if "aggregate" in line.lower())
        groups = len({o[2] for o in db.storage.heap("orders").rows})
        assert actual_rows(agg_line)[0] == groups

    def test_subplan_instrumented(self, db):
        text = db.explain_analyze("""
            SELECT SUM(l_price) FROM lineitem, part
            WHERE p_partkey = l_partkey AND p_brand = 'Brand#1'
              AND l_quantity < (SELECT AVG(l_quantity) FROM lineitem
                                WHERE l_partkey = p_partkey)""",
            optimizer="orca")
        # The materialised subquery's operators carry actuals too.
        materialize_at = text.find("Materialize")
        assert materialize_at != -1
        assert "actual rows=" in text[materialize_at:]

    def test_rebind_counts_shown(self, db):
        # Section 7, Orca change 3: rebind counts — the number of distinct
        # outer rows forcing re-materialisation — are tracked and shown.
        text = db.explain_analyze("""
            SELECT SUM(l_price) FROM lineitem, part
            WHERE p_partkey = l_partkey AND p_brand = 'Brand#1'
              AND l_quantity < (SELECT AVG(l_quantity) FROM lineitem
                                WHERE l_partkey = p_partkey)""",
            optimizer="orca")
        match = re.search(r"rebinds=(\d+)", text)
        assert match is not None
        rebinds = int(match.group(1))
        brand_parts = {p[0] for p in db.storage.heap("part").rows
                       if p[1] == "Brand#1"}
        # One rebind per distinct correlated p_partkey, at most.
        assert 1 <= rebinds <= len(brand_parts)

    def test_results_unaffected_by_instrumentation(self, db):
        sql = "SELECT COUNT(*) FROM orders WHERE o_totalprice > 1000"
        plain = db.execute(sql, optimizer="mysql")
        db.explain_analyze(sql, optimizer="mysql")
        assert db.execute(sql, optimizer="mysql") == plain


class TestBatchCounts:
    """Per-node batch counts and the executor footer line."""

    def test_batch_counts_on_operators(self, db):
        text = db.explain_analyze(
            "SELECT o_status, COUNT(*) FROM orders GROUP BY o_status",
            optimizer="mysql", executor_mode="batch")
        scan_line = next(line for line in text.splitlines()
                         if "Table scan" in line)
        assert re.search(r"\(batches=\d+\)", scan_line)

    def test_footer_reports_batch_engine(self, db):
        text = db.explain_analyze("SELECT o_orderkey FROM orders",
                                  optimizer="mysql",
                                  executor_mode="batch")
        footer = text.split("Stage breakdown")[1]
        assert re.search(
            r"executor: batch \(batches=[1-9]\d*, "
            r"batch_rows=[1-9]\d*, compiled_exprs=\d+\)", footer)

    def test_footer_reports_row_engine(self, db):
        text = db.explain_analyze("SELECT o_orderkey FROM orders",
                                  optimizer="mysql",
                                  executor_mode="row")
        assert "executor: row" in text
        assert "batches=" not in text

    def test_actual_rows_match_across_modes(self, db):
        sql = """
            SELECT o_status, COUNT(*) FROM orders
            WHERE o_totalprice > 1000
            GROUP BY o_status ORDER BY o_status"""
        row_text = db.explain_analyze(sql, optimizer="mysql",
                                      executor_mode="row")
        batch_text = db.explain_analyze(sql, optimizer="mysql",
                                        executor_mode="batch")
        assert actual_rows(row_text) == actual_rows(batch_text)
