"""Shared fixtures: small schemas and loaded databases."""

import datetime
import random

import pytest

from repro import Database, DatabaseConfig
from repro.catalog import Catalog, Column, Index, TableSchema
from repro.mysql_types import MySQLType


def _orders_schema():
    return TableSchema("orders", [
        Column.of("o_orderkey", MySQLType.LONGLONG, nullable=False),
        Column.of("o_custkey", MySQLType.LONGLONG, nullable=False),
        Column.of("o_status", MySQLType.STRING, 1, nullable=False),
        Column.of("o_totalprice", MySQLType.DOUBLE, nullable=False),
        Column.of("o_orderdate", MySQLType.DATE, nullable=False),
        Column.of("o_priority", MySQLType.VARCHAR, 15, nullable=False),
        Column.of("o_comment", MySQLType.VARCHAR, 79),
    ], [Index("PRIMARY", ("o_orderkey",), primary=True),
        Index("orders_custkey", ("o_custkey",))])


def _lineitem_schema():
    return TableSchema("lineitem", [
        Column.of("l_orderkey", MySQLType.LONGLONG, nullable=False),
        Column.of("l_partkey", MySQLType.LONGLONG, nullable=False),
        Column.of("l_linenumber", MySQLType.LONG, nullable=False),
        Column.of("l_quantity", MySQLType.DOUBLE, nullable=False),
        Column.of("l_price", MySQLType.DOUBLE, nullable=False),
        Column.of("l_shipdate", MySQLType.DATE, nullable=False),
        Column.of("l_commitdate", MySQLType.DATE, nullable=False),
        Column.of("l_receiptdate", MySQLType.DATE, nullable=False),
    ], [Index("PRIMARY", ("l_orderkey", "l_linenumber"), primary=True),
        Index("lineitem_partkey", ("l_partkey",))])


def _customer_schema():
    return TableSchema("customer", [
        Column.of("c_custkey", MySQLType.LONGLONG, nullable=False),
        Column.of("c_name", MySQLType.VARCHAR, 25, nullable=False),
        Column.of("c_segment", MySQLType.STRING, 10, nullable=False),
        Column.of("c_acctbal", MySQLType.DOUBLE, nullable=False),
        Column.of("c_comment", MySQLType.VARCHAR, 100),
    ], [Index("PRIMARY", ("c_custkey",), primary=True)])


def _part_schema():
    return TableSchema("part", [
        Column.of("p_partkey", MySQLType.LONGLONG, nullable=False),
        Column.of("p_brand", MySQLType.VARCHAR, 10, nullable=False),
        Column.of("p_size", MySQLType.LONG, nullable=False),
    ], [Index("PRIMARY", ("p_partkey",), primary=True)])


@pytest.fixture
def mini_catalog():
    """A catalog with orders/lineitem/customer/part schemas (no data)."""
    catalog = Catalog()
    for schema in (_orders_schema(), _lineitem_schema(),
                   _customer_schema(), _part_schema()):
        catalog.create_table(schema)
    return catalog


def build_mini_db(seed: int = 0, orders: int = 300,
                  lines_per_order: int = 4,
                  config: DatabaseConfig = None) -> Database:
    """A loaded database with deterministic synthetic data."""
    rng = random.Random(seed)
    db = Database(config or DatabaseConfig(complex_query_threshold=3))
    for schema in (_orders_schema(), _lineitem_schema(),
                   _customer_schema(), _part_schema()):
        db.create_table(schema)

    start = datetime.date(1995, 1, 1)
    n_customers = max(10, orders // 5)
    n_parts = max(10, orders // 4)

    db.load("customer", [
        (k, f"Customer#{k}", ["GOLD", "SILVER", "BRONZE"][k % 3],
         round(rng.uniform(-500, 5000), 2), f"comment {k}")
        for k in range(1, n_customers + 1)])
    db.load("part", [
        (k, f"Brand#{k % 5}", k % 50 + 1) for k in range(1, n_parts + 1)])
    order_rows = []
    line_rows = []
    for key in range(1, orders + 1):
        date = start + datetime.timedelta(days=rng.randrange(365))
        order_rows.append((
            key, rng.randrange(1, n_customers + 1), rng.choice("OFP"),
            round(rng.uniform(100, 10000), 2), date,
            f"{key % 5}-PRIO", None if key % 7 == 0 else f"note {key}"))
        for line in range(1, rng.randrange(1, lines_per_order * 2) + 1):
            ship = date + datetime.timedelta(days=rng.randrange(1, 60))
            commit = date + datetime.timedelta(days=rng.randrange(10, 50))
            receipt = ship + datetime.timedelta(days=rng.randrange(1, 20))
            line_rows.append((
                key, rng.randrange(1, n_parts + 1), line,
                float(rng.randrange(1, 50)),
                round(rng.uniform(10, 500), 2), ship, commit, receipt))
    db.load("orders", order_rows)
    db.load("lineitem", line_rows)
    db.analyze()
    return db


@pytest.fixture(scope="module")
def mini_db():
    return build_mini_db()


def brute_force(db, tables, predicate, project):
    """Reference evaluator: cartesian product + Python predicate."""
    import itertools

    heaps = [db.storage.heap(t).rows for t in tables]
    out = []
    for combo in itertools.product(*heaps):
        if predicate(*combo):
            out.append(project(*combo))
    return out
