"""The statement plan cache and cost-bound search pruning.

Tentpole coverage for the optimize-stage cost work: a repeated
statement is served from the cache (no memo search in its trace, same
rows), every write path — INSERT, UPDATE, DELETE, and ANALYZE —
invalidates, ``use_plan_cache=False`` bypasses, failed detours are
never cached, and the branch-and-bound pruning in Orca's DP join
search picks a plan of exactly the same cost as the unpruned search.
"""

import pytest

from repro import Database, DatabaseConfig, FallbackReason, FaultInjector
from repro.observability import find_spans
from repro.plan_cache import PlanCache, PlanCacheEntry, statement_cache_key
from repro.resilience import statement_fingerprint

from tests.conftest import build_mini_db

JOIN_SQL = """
SELECT COUNT(*) FROM customer, orders, lineitem
WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey
"""

FIVE_WAY_SQL = """
SELECT COUNT(*)
FROM customer c1, orders o1, lineitem l1, part p1, orders o2
WHERE c1.c_custkey = o1.o_custkey
  AND o1.o_orderkey = l1.l_orderkey
  AND l1.l_partkey = p1.p_partkey
  AND o2.o_custkey = c1.c_custkey
"""


@pytest.fixture()
def db():
    return build_mini_db(seed=5, orders=80)


# -- the key function ---------------------------------------------------------------


class TestStatementCacheKey:

    def test_whitespace_and_case_insensitive(self):
        assert statement_cache_key("SELECT  1\nFROM t") == \
            statement_cache_key("select 1 from t")

    def test_literals_are_preserved(self):
        """Unlike the resilience fingerprint, different literals must
        map to different plans (they are compiled into the executor)."""
        a = "SELECT * FROM orders WHERE o_totalprice > 100"
        b = "SELECT * FROM orders WHERE o_totalprice > 250"
        assert statement_cache_key(a) != statement_cache_key(b)
        assert statement_fingerprint(a) == statement_fingerprint(b)

    def test_optimizer_is_part_of_the_key(self):
        sql = "SELECT 1 FROM t"
        assert statement_cache_key(sql, "orca") != \
            statement_cache_key(sql, "mysql")


# -- the cache data structure -------------------------------------------------------


def _entry(version: int = 0) -> PlanCacheEntry:
    return PlanCacheEntry(executor=object(), skeleton=object(),
                          optimizer_used="orca", catalog_version=version)


class TestPlanCacheLRU:

    def test_lru_eviction_and_counters(self):
        cache = PlanCache(capacity=2)
        cache.store("a", _entry())
        cache.store("b", _entry())
        assert cache.lookup("a", 0) is not None  # "b" is now LRU
        cache.store("c", _entry())
        assert cache.evictions == 1
        assert cache.lookup("b", 0) is None
        assert cache.lookup("a", 0) is not None
        assert cache.lookup("c", 0) is not None
        stats = cache.stats()
        assert stats["size"] == 2
        assert stats["evictions"] == 1

    def test_version_mismatch_invalidates(self):
        cache = PlanCache(capacity=4)
        cache.store("a", _entry(version=3))
        assert cache.lookup("a", 4) is None
        assert cache.invalidations == 1
        assert "a" not in cache

    def test_invalidate_all(self):
        cache = PlanCache(capacity=4)
        cache.store("a", _entry())
        cache.store("b", _entry())
        assert cache.invalidate_all() == 2
        assert len(cache) == 0
        assert cache.invalidations == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


# -- end-to-end: hits skip optimization ----------------------------------------------


class TestCacheHits:

    def test_repeat_is_a_hit_with_identical_rows(self, db):
        first = db.run(JOIN_SQL, trace=True)
        assert not first.plan_cache_hit
        second = db.run(JOIN_SQL, trace=True)
        assert second.plan_cache_hit
        assert second.rows == first.rows
        assert second.optimizer_used == first.optimizer_used
        # The hit path skips the whole optimize pipeline: no memo
        # search, no detour, no refine — just route/execute.
        names = {span.name for span in second.trace.walk()}
        assert "memo_search" not in names
        assert "orca_detour" not in names
        assert "refine" not in names
        route = find_spans(second.trace, "route")[0]
        assert route.attributes["plan_cache"] == "hit"

    def test_miss_then_hit_counters(self, db):
        db.run(JOIN_SQL)
        db.run(JOIN_SQL)
        db.run(JOIN_SQL)
        stats = db.plan_cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2
        assert db.metrics.count("plan_cache.hits") == 2
        assert db.metrics.count("plan_cache.misses") == 1

    def test_bypass_never_looks_up_or_stores(self, db):
        db.run(JOIN_SQL, use_plan_cache=False)
        assert len(db.plan_cache) == 0
        assert db.plan_cache.hits == db.plan_cache.misses == 0
        db.run(JOIN_SQL)          # miss + store
        result = db.run(JOIN_SQL, use_plan_cache=False)
        assert not result.plan_cache_hit
        assert db.plan_cache.hits == 0

    def test_config_disables_cache_globally(self):
        db = build_mini_db(seed=5, orders=80)
        db.config.plan_cache_enabled = False
        db.run(JOIN_SQL)
        db.run(JOIN_SQL)
        assert len(db.plan_cache) == 0

    def test_different_literals_do_not_share_plans(self, db):
        template = "SELECT COUNT(*) FROM orders, lineitem, customer " \
                   "WHERE o_orderkey = l_orderkey " \
                   "AND c_custkey = o_custkey AND o_totalprice > {}"
        low = db.run(template.format(100))
        high = db.run(template.format(9000))
        assert not high.plan_cache_hit
        assert low.rows[0][0] >= high.rows[0][0]

    def test_metrics_report_mentions_plan_cache(self, db):
        db.run(JOIN_SQL)
        db.run(JOIN_SQL)
        report = db.metrics_report()
        assert "plan cache:" in report
        assert "search pruning:" in report


# -- invalidation --------------------------------------------------------------------


class TestInvalidation:

    def _prime(self, db):
        result = db.run(JOIN_SQL)
        assert not result.plan_cache_hit
        assert db.run(JOIN_SQL).plan_cache_hit

    def test_insert_invalidates(self, db):
        self._prime(db)
        db.run("INSERT INTO customer VALUES "
               "(9001, 'Customer#9001', 'GOLD', 10.0, 'late arrival')")
        result = db.run(JOIN_SQL)
        assert not result.plan_cache_hit
        assert db.plan_cache.invalidations >= 1

    def test_update_invalidates(self, db):
        self._prime(db)
        db.run("UPDATE orders SET o_totalprice = 1.0 WHERE o_orderkey = 1")
        assert not db.run(JOIN_SQL).plan_cache_hit

    def test_delete_invalidates(self, db):
        self._prime(db)
        before = db.run(JOIN_SQL).rows
        db.run("DELETE FROM lineitem WHERE l_orderkey = 1")
        result = db.run(JOIN_SQL)
        assert not result.plan_cache_hit
        # ... and the recompiled plan sees the new data.
        assert result.rows[0][0] <= before[0][0]

    def test_analyze_invalidates(self, db):
        self._prime(db)
        db.analyze()
        assert not db.run(JOIN_SQL).plan_cache_hit

    def test_ddl_invalidates(self, db):
        self._prime(db)
        db.catalog.drop_table("part")
        assert not db.run(JOIN_SQL).plan_cache_hit

    def test_stale_entry_serves_fresh_rows_after_dml(self, db):
        """The end-to-end correctness story: cached plan + DML + re-run
        returns the rows the new data implies, not the old ones."""
        self._prime(db)
        before = db.run(JOIN_SQL).rows[0][0]
        db.run("INSERT INTO orders VALUES "
               "(99001, 1, 'O', 500.0, '1995-06-01', '1-PRIO', NULL)")
        db.run("INSERT INTO lineitem VALUES "
               "(99001, 1, 1, 5.0, 50.0, "
               "'1995-06-10', '1995-06-15', '1995-06-20')")
        after = db.run(JOIN_SQL).rows[0][0]
        assert after == before + 1


# -- failed detours are never cached --------------------------------------------------


class TestFailureInteraction:

    def test_fallback_is_not_cached(self, db):
        db.config.fault_injector = FaultInjector().arm(
            "optimizer", "typed", times=1)
        first = db.run(JOIN_SQL, optimizer="orca")
        assert first.fallback_reason is FallbackReason.TYPED_ABORT
        assert len(db.plan_cache) == 0
        # The injector is exhausted: the retry takes the detour again
        # (a cached MySQL plan would have hidden the recovery).
        second = db.run(JOIN_SQL, optimizer="orca")
        assert second.optimizer_used == "orca"
        assert not second.plan_cache_hit
        assert db.run(JOIN_SQL, optimizer="orca").plan_cache_hit

    def test_circuit_broken_statement_never_populates(self, db):
        db.config.fault_injector = FaultInjector().arm(
            "plan_converter", "crash")
        for __ in range(db.config.circuit_breaker_threshold):
            db.run(JOIN_SQL, optimizer="orca")
        assert len(db.plan_cache) == 0
        result = db.run(JOIN_SQL, optimizer="orca")
        assert result.fallback_reason is FallbackReason.CIRCUIT_OPEN
        assert len(db.plan_cache) == 0
        # Every quarantined run keeps consulting the breaker rather
        # than short-circuiting through the cache.
        assert db.fallback_log.count(FallbackReason.CIRCUIT_OPEN) == 1


# -- cost-bound pruning ---------------------------------------------------------------


class TestCostBoundPruning:

    @pytest.mark.parametrize("sql", [JOIN_SQL, FIVE_WAY_SQL])
    def test_pruned_search_matches_unpruned_cost(self, sql):
        """Soundness: the bound only skips candidates that cannot beat
        the incumbent, so the chosen plan's cost is identical."""
        pruned_db = build_mini_db(seed=5, orders=80)
        unpruned_db = build_mini_db(seed=5, orders=80)
        unpruned_db.config.orca_cost_bound_pruning = False

        pruned = pruned_db.run(sql, optimizer="orca", trace=True,
                               use_plan_cache=False)
        unpruned = unpruned_db.run(sql, optimizer="orca", trace=True,
                                   use_plan_cache=False)
        assert pruned.optimizer_used == "orca"
        assert unpruned.optimizer_used == "orca"
        assert sorted(pruned.rows) == sorted(unpruned.rows)

        pruned_cost = sum(
            s.attributes["best_cost"]
            for s in find_spans(pruned.trace, "memo_search"))
        unpruned_cost = sum(
            s.attributes["best_cost"]
            for s in find_spans(unpruned.trace, "memo_search"))
        assert pruned_cost == pytest.approx(unpruned_cost)

    def test_pruning_reduces_cost_evaluations(self):
        pruned_db = build_mini_db(seed=5, orders=80)
        unpruned_db = build_mini_db(seed=5, orders=80)
        unpruned_db.config.orca_cost_bound_pruning = False

        def evaluations(db):
            result = db.run(FIVE_WAY_SQL, optimizer="orca", trace=True,
                            use_plan_cache=False)
            assert result.optimizer_used == "orca"
            return sum(s.attributes["cost_evaluations"]
                       for s in find_spans(result.trace, "memo_search"))

        with_pruning = evaluations(pruned_db)
        without = evaluations(unpruned_db)
        assert with_pruning < without

    def test_pruned_candidates_are_counted(self, db):
        result = db.run(FIVE_WAY_SQL, optimizer="orca", trace=True,
                        use_plan_cache=False)
        pruned = sum(s.attributes["pruned_candidates"]
                     for s in find_spans(result.trace, "memo_search"))
        assert pruned > 0
        assert db.metrics.count("orca.pruned_candidates") == pruned

    def test_memo_separates_offered_from_costed(self, db):
        result = db.run(JOIN_SQL, optimizer="orca", trace=True,
                        use_plan_cache=False)
        span = find_spans(result.trace, "memo_search")[0]
        assert span.attributes["memo_offered"] >= \
            span.attributes["memo_alternatives"]


# -- the bounded metadata cache -------------------------------------------------------


class TestBoundedMDCache:

    def test_tiny_capacity_evicts_and_counts(self, db):
        db.config.mdcache_capacity = 1
        result = db.run(JOIN_SQL, optimizer="orca", use_plan_cache=False)
        assert result.optimizer_used == "orca"
        stats = db.last_router.last_accessor.stats()
        assert stats["capacity"] == 1
        assert stats["evictions"] > 0
        assert sum(stats["evictions_by_kind"].values()) == \
            stats["evictions"]
        assert db.metrics.count("mdcache.evictions") == stats["evictions"]

    def test_default_capacity_never_evicts_here(self, db):
        result = db.run(JOIN_SQL, optimizer="orca", use_plan_cache=False)
        assert result.optimizer_used == "orca"
        assert db.last_router.last_accessor.stats()["evictions"] == 0
