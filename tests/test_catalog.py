"""Tests for the catalog: schemas, statistics, and the data dictionary."""

import pytest

from repro.catalog import (
    Catalog,
    Column,
    ColumnStatistics,
    Index,
    TableSchema,
    TableStatistics,
)
from repro.errors import CatalogError
from repro.mysql_types import MySQLType


def make_schema(name="t"):
    return TableSchema(name, [
        Column.of("id", MySQLType.LONGLONG, nullable=False),
        Column.of("name", MySQLType.VARCHAR, 30),
        Column.of("amount", MySQLType.DOUBLE),
    ], [Index("PRIMARY", ("id",), primary=True)])


class TestTableSchema:
    def test_column_positions(self):
        schema = make_schema()
        assert schema.column_position("id") == 0
        assert schema.column_position("amount") == 2

    def test_unknown_column_raises(self):
        with pytest.raises(CatalogError):
            make_schema().column_position("missing")

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("bad", [
                Column.of("a", MySQLType.LONG),
                Column.of("a", MySQLType.LONG),
            ])

    def test_empty_table_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("bad", [])

    def test_primary_key_lookup(self):
        schema = make_schema()
        assert schema.primary_key.name == "PRIMARY"
        assert schema.primary_key.unique

    def test_primary_implies_unique(self):
        index = Index("PRIMARY", ("id",), primary=True)
        assert index.unique

    def test_duplicate_index_rejected(self):
        schema = make_schema()
        with pytest.raises(CatalogError):
            schema.add_index(Index("PRIMARY", ("name",)))

    def test_index_on_unknown_column_rejected(self):
        schema = make_schema()
        with pytest.raises(CatalogError):
            schema.add_index(Index("bad", ("missing",)))

    def test_indexes_on_prefix(self):
        schema = make_schema()
        schema.add_index(Index("name_amount", ("name", "amount")))
        assert [i.name for i in schema.indexes_on_prefix("name")] == \
            ["name_amount"]
        assert schema.indexes_on_prefix("amount") == []

    def test_unique_columns(self):
        schema = make_schema()
        assert schema.unique_columns() == frozenset({"id"})

    def test_row_width_positive(self):
        assert make_schema().row_width > 0


class TestCatalog:
    def test_create_and_lookup(self):
        catalog = Catalog()
        catalog.create_table(make_schema())
        assert catalog.has_table("t")
        assert catalog.table("T").name == "t"  # case-insensitive

    def test_duplicate_create_rejected(self):
        catalog = Catalog()
        catalog.create_table(make_schema())
        with pytest.raises(CatalogError):
            catalog.create_table(make_schema())

    def test_unknown_table_raises(self):
        with pytest.raises(CatalogError):
            Catalog().table("nope")

    def test_drop_table(self):
        catalog = Catalog()
        catalog.create_table(make_schema())
        catalog.drop_table("t")
        assert not catalog.has_table("t")

    def test_statistics_created_with_table(self):
        catalog = Catalog()
        catalog.create_table(make_schema())
        assert catalog.statistics("t").row_count == 0

    def test_set_statistics(self):
        catalog = Catalog()
        catalog.create_table(make_schema())
        catalog.set_statistics("t", TableStatistics(row_count=42))
        assert catalog.statistics("t").row_count == 42


class TestColumnStatistics:
    def test_from_values(self):
        stats = ColumnStatistics.from_values([1, 2, 2, 3, None])
        assert stats.null_count == 1
        assert stats.distinct_count == 3
        assert stats.min_value == 1
        assert stats.max_value == 3
        assert stats.histogram is not None

    def test_unique_flag_carried(self):
        stats = ColumnStatistics.from_values([1, 2, 3], unique=True)
        assert stats.unique
        # Histograms are built even for unique columns — the restriction
        # MySQL normally applies was lifted for Orca (Section 5.5).
        assert stats.histogram is not None

    def test_histogram_optional(self):
        stats = ColumnStatistics.from_values([1, 2], with_histogram=False)
        assert stats.histogram is None

    def test_null_fraction(self):
        stats = ColumnStatistics.from_values([1, None, None, None])
        assert stats.null_fraction(4) == pytest.approx(0.75)

    def test_table_statistics_default_column(self):
        table = TableStatistics(row_count=100)
        assert table.ndv("never_analyzed") >= 1
