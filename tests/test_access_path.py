"""Tests for access-path analysis: ranges, ref access, ordered scans."""

import datetime

import pytest

from repro.executor.plan import AccessMethod
from repro.mysql_optimizer.access_path import (
    best_local_access,
    ordered_index_access,
    ref_access,
)
from repro.mysql_optimizer.cost import MySQLCostModel
from repro.selectivity import SelectivityEstimator
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.sql.prepare import prepare
from repro.sql.resolver import Resolver

from tests.conftest import build_mini_db


@pytest.fixture(scope="module")
def db():
    return build_mini_db(seed=51, orders=400)


def setup(db, sql):
    stmt = parse_statement(sql)
    block, __ = Resolver(db.catalog).resolve(stmt)
    prepare(block)
    estimator = SelectivityEstimator(db.catalog, use_histograms=True)
    return block, estimator, MySQLCostModel()


class TestBestLocalAccess:
    def test_no_predicates_scans(self, db):
        block, estimator, cost_model = setup(db, "SELECT 1 FROM orders")
        entry = block.entries[0]
        access = best_local_access(block, entry, [], estimator, cost_model)
        assert access.method is AccessMethod.TABLE_SCAN
        rows = db.catalog.statistics("orders").row_count
        assert access.est_rows == pytest.approx(rows)

    def test_equality_on_pk_uses_range(self, db):
        block, estimator, cost_model = setup(
            db, "SELECT 1 FROM orders WHERE o_orderkey = 9")
        entry = block.entries[0]
        access = best_local_access(block, entry, block.where_conjuncts,
                                   estimator, cost_model)
        assert access.method is AccessMethod.INDEX_RANGE
        assert access.low == access.high == (9,)
        assert len(access.consumed_conjuncts) == 1

    def test_open_range(self, db):
        block, estimator, cost_model = setup(
            db, "SELECT 1 FROM orders WHERE o_orderkey > 390")
        entry = block.entries[0]
        access = best_local_access(block, entry, block.where_conjuncts,
                                   estimator, cost_model)
        assert access.method is AccessMethod.INDEX_RANGE
        assert access.low == (390,) and not access.low_inclusive
        assert access.high is None

    def test_closed_range_merges_bounds(self, db):
        block, estimator, cost_model = setup(
            db, "SELECT 1 FROM orders "
                "WHERE o_orderkey >= 10 AND o_orderkey < 20")
        entry = block.entries[0]
        access = best_local_access(block, entry, block.where_conjuncts,
                                   estimator, cost_model)
        assert access.method is AccessMethod.INDEX_RANGE
        assert access.low == (10,) and access.low_inclusive
        assert access.high == (20,) and not access.high_inclusive
        assert len(access.consumed_conjuncts) == 2

    def test_between_extracted(self, db):
        block, estimator, cost_model = setup(
            db, "SELECT 1 FROM orders "
                "WHERE o_orderkey BETWEEN 100 AND 110")
        entry = block.entries[0]
        access = best_local_access(block, entry, block.where_conjuncts,
                                   estimator, cost_model)
        assert access.method is AccessMethod.INDEX_RANGE
        assert access.low == (100,) and access.high == (110,)

    def test_unselective_range_prefers_scan(self, db):
        block, estimator, cost_model = setup(
            db, "SELECT 1 FROM orders WHERE o_orderkey > 0")
        entry = block.entries[0]
        access = best_local_access(block, entry, block.where_conjuncts,
                                   estimator, cost_model)
        assert access.method is AccessMethod.TABLE_SCAN

    def test_predicate_on_unindexed_column_scans(self, db):
        block, estimator, cost_model = setup(
            db, "SELECT 1 FROM orders WHERE o_totalprice = 1.0")
        entry = block.entries[0]
        access = best_local_access(block, entry, block.where_conjuncts,
                                   estimator, cost_model)
        assert access.method is AccessMethod.TABLE_SCAN


class TestRefAccess:
    def _two_tables(self, db, sql):
        block, estimator, cost_model = setup(db, sql)
        return block, block.entries, estimator, cost_model

    def test_pk_ref_access(self, db):
        block, (customer, orders), estimator, cost_model = \
            self._two_tables(db, """
                SELECT 1 FROM customer, orders
                WHERE c_custkey = o_custkey""")
        access = ref_access(block, customer, block.where_conjuncts,
                            frozenset({orders.entry_id}),
                            estimator, cost_model)
        assert access is not None
        assert access.method is AccessMethod.INDEX_LOOKUP
        assert access.index_name == "PRIMARY"
        assert access.est_rows == pytest.approx(1.0)  # unique key

    def test_secondary_index_ref(self, db):
        block, (customer, orders), estimator, cost_model = \
            self._two_tables(db, """
                SELECT 1 FROM customer, orders
                WHERE c_custkey = o_custkey""")
        access = ref_access(block, orders, block.where_conjuncts,
                            frozenset({customer.entry_id}),
                            estimator, cost_model)
        assert access is not None
        assert access.index_name == "orders_custkey"
        assert access.est_rows > 1.0  # non-unique: several per customer

    def test_no_ref_when_outer_not_available(self, db):
        block, (customer, orders), estimator, cost_model = \
            self._two_tables(db, """
                SELECT 1 FROM customer, orders
                WHERE c_custkey = o_custkey""")
        access = ref_access(block, orders, block.where_conjuncts,
                            frozenset(), estimator, cost_model)
        assert access is None

    def test_composite_key_prefix(self, db):
        block, entries, estimator, cost_model = self._two_tables(db, """
            SELECT 1 FROM orders, lineitem
            WHERE l_orderkey = o_orderkey""")
        orders, lineitem = entries
        access = ref_access(block, lineitem, block.where_conjuncts,
                            frozenset({orders.entry_id}),
                            estimator, cost_model)
        assert access is not None
        # PRIMARY is (l_orderkey, l_linenumber): prefix lookup on 1 col.
        assert access.index_name == "PRIMARY"
        assert len(access.key_exprs) == 1

    def test_non_equality_gives_no_ref(self, db):
        block, entries, estimator, cost_model = self._two_tables(db, """
            SELECT 1 FROM orders, lineitem
            WHERE l_orderkey > o_orderkey""")
        orders, lineitem = entries
        access = ref_access(block, lineitem, block.where_conjuncts,
                            frozenset({orders.entry_id}),
                            estimator, cost_model)
        assert access is None


class TestOrderedIndexAccess:
    def _order_items(self, db, sql):
        block, __, __ = setup(db, sql)
        return block.entries[0], block.order_by

    def test_matching_index_found(self, db):
        entry, order_items = self._order_items(
            db, "SELECT o_orderkey FROM orders ORDER BY o_orderkey")
        found = ordered_index_access(entry, order_items)
        assert found == ("PRIMARY", False)

    def test_descending_direction(self, db):
        entry, order_items = self._order_items(
            db, "SELECT o_orderkey FROM orders ORDER BY o_orderkey DESC")
        assert ordered_index_access(entry, order_items) == ("PRIMARY", True)

    def test_unindexed_order_not_satisfied(self, db):
        entry, order_items = self._order_items(
            db, "SELECT o_orderkey FROM orders ORDER BY o_totalprice")
        assert ordered_index_access(entry, order_items) is None

    def test_mixed_directions_rejected(self, db):
        block, __, __ = setup(db, """
            SELECT l_orderkey FROM lineitem
            ORDER BY l_orderkey, l_linenumber DESC""")
        assert ordered_index_access(block.entries[0], block.order_by) \
            is None
