"""Tests for singleton and equi-height histograms (Sections 5.5 and 7)."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.histogram import (
    EquiHeightHistogram,
    SingletonHistogram,
    build_histogram,
    encode_string_key,
)


class TestStringKeyEncoding:
    def test_order_preserving_within_prefix(self):
        # The paper's scheme converts string bucket boundaries to 64-bit
        # signed integers with an order-preserving function (Section 7).
        words = ["apple", "banana", "cherry", "damson", "elderberry"]
        keys = [encode_string_key(w) for w in words]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)

    def test_long_common_prefix_collides(self):
        # "because of the fixed length, it cannot distinguish between two
        # strings with a long common prefix" — the documented weakness.
        a = "commonprefix_aaaa"
        b = "commonprefix_bbbb"
        assert encode_string_key(a) == encode_string_key(b)

    def test_empty_string_is_minimal(self):
        assert encode_string_key("") <= encode_string_key("a")

    def test_non_negative(self):
        for s in ["", "a", "\x7f" * 10, "zzzzzzzzzz"]:
            assert encode_string_key(s) >= 0

    @given(st.text(max_size=20), st.text(max_size=20))
    @settings(max_examples=200)
    def test_weak_order_preservation(self, a, b):
        # Keys may collide, but they must never invert the byte order of
        # strings that differ within the 7-byte prefix.
        ka, kb = encode_string_key(a), encode_string_key(b)
        ba = a.encode("utf-8", errors="replace")[:7]
        bb = b.encode("utf-8", errors="replace")[:7]
        if ba < bb:
            assert ka <= kb
        elif ba > bb:
            assert ka >= kb


class TestSingletonHistogram:
    def _histogram(self):
        return SingletonHistogram({"a": 0.5, "b": 0.3, "c": 0.2})

    def test_equality_exact(self):
        h = self._histogram()
        assert h.selectivity_eq("a") == 0.5
        assert h.selectivity_eq("missing") == 0.0

    def test_range_sums_buckets(self):
        h = self._histogram()
        assert h.selectivity_range("a", "b", True, True) == \
            pytest.approx(0.8)

    def test_unbounded_range_is_total(self):
        h = self._histogram()
        assert h.selectivity_range(None, None) == pytest.approx(1.0)

    def test_distinct_values(self):
        assert self._histogram().distinct_values == 3


class TestEquiHeightHistogram:
    def _uniform(self, n=1000):
        return build_histogram(list(range(n)), buckets=10,
                               singleton_limit=8)

    def test_built_kind(self):
        h = self._uniform()
        assert isinstance(h, EquiHeightHistogram)

    def test_range_selectivity_roughly_uniform(self):
        h = self._uniform()
        sel = h.selectivity_range(100, 300)
        assert 0.15 <= sel <= 0.25

    def test_lt_and_gt_are_complementary(self):
        h = self._uniform()
        below = h.selectivity_lt(500)
        above = h.selectivity_gt(500, inclusive=True)
        assert below + above == pytest.approx(1.0, abs=0.05)

    def test_eq_selectivity_small_for_high_ndv(self):
        h = self._uniform()
        assert h.selectivity_eq(500) < 0.01

    def test_out_of_range_values(self):
        h = self._uniform()
        assert h.selectivity_lt(-10) == 0.0
        assert h.selectivity_gt(2000) == 0.0
        assert h.selectivity_lt(5000) == pytest.approx(1.0)

    def test_dates_are_supported(self):
        base = datetime.date(1995, 1, 1)
        values = [base + datetime.timedelta(days=i) for i in range(400)]
        h = build_histogram(values, buckets=8, singleton_limit=4)
        sel = h.selectivity_range(base + datetime.timedelta(days=100),
                                  base + datetime.timedelta(days=200))
        assert 0.15 <= sel <= 0.35

    def test_string_equi_height_histogram(self):
        # MySQL builds equi-height string histograms; Orca was extended to
        # consume them via the integer encoding (Section 5.5 / 7).
        values = [f"{chr(97 + i % 26)}value{i}" for i in range(500)]
        h = build_histogram(values, buckets=10, singleton_limit=16)
        assert isinstance(h, EquiHeightHistogram)
        sel = h.selectivity_range("a", "n")
        assert 0.3 <= sel <= 0.7


class TestBuildHistogram:
    def test_empty_returns_none(self):
        assert build_histogram([]) is None
        assert build_histogram([None, None]) is None

    def test_low_ndv_gets_singleton(self):
        h = build_histogram(["x"] * 70 + ["y"] * 30)
        assert isinstance(h, SingletonHistogram)
        assert h.selectivity_eq("x") == pytest.approx(0.7)

    def test_nulls_excluded(self):
        h = build_histogram(["x", None, "x", None, "y"])
        assert h.selectivity_eq("x") == pytest.approx(2 / 3)

    @given(st.lists(st.integers(min_value=-10000, max_value=10000),
                    min_size=1, max_size=300))
    @settings(max_examples=100)
    def test_selectivities_always_bounded(self, values):
        h = build_histogram(values)
        assert h is not None
        probe = values[len(values) // 2]
        assert 0.0 <= h.selectivity_eq(probe) <= 1.0
        assert 0.0 <= h.selectivity_lt(probe) <= 1.0
        assert 0.0 <= h.selectivity_range(min(values), max(values),
                                          True, True) <= 1.0

    @given(st.lists(st.integers(min_value=0, max_value=1000),
                    min_size=50, max_size=300))
    @settings(max_examples=50)
    def test_cumulative_is_monotone(self, values):
        h = build_histogram(values, singleton_limit=4)
        if isinstance(h, EquiHeightHistogram):
            points = sorted(set(values))
            sels = [h.selectivity_lt(p, inclusive=True) for p in points]
            assert all(a <= b + 1e-9 for a, b in zip(sels, sels[1:]))

    @given(st.lists(st.integers(min_value=0, max_value=100),
                    min_size=20, max_size=200))
    @settings(max_examples=50)
    def test_full_range_covers_everything(self, values):
        h = build_histogram(values)
        sel = h.selectivity_range(min(values), max(values), True, True)
        assert sel == pytest.approx(1.0, abs=0.1)
