"""Tests for the DXL exchange format: every object must round-trip."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bridge import dxl
from repro.catalog import Column, Index, TableSchema
from repro.catalog.histogram import build_histogram
from repro.catalog.statistics import ColumnStatistics, TableStatistics
from repro.mysql_types import MySQLType


class TestValueEncoding:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, -17, 3.5, "text with spaces",
        datetime.date(1995, 6, 17),
        datetime.datetime(1995, 6, 17, 10, 30, 5),
        "str:with:colons",
    ])
    def test_roundtrip(self, value):
        assert dxl.decode_value(dxl.encode_value(value)) == value

    def test_bool_not_confused_with_int(self):
        assert dxl.decode_value(dxl.encode_value(True)) is True
        assert dxl.decode_value(dxl.encode_value(1)) == 1
        assert not isinstance(dxl.decode_value(dxl.encode_value(1)), bool)

    @given(st.one_of(st.none(), st.integers(), st.floats(allow_nan=False),
                     st.text(), st.dates()))
    @settings(max_examples=200)
    def test_roundtrip_property(self, value):
        assert dxl.decode_value(dxl.encode_value(value)) == value


class TestRelationDxl:
    def _schema(self):
        return TableSchema("lineitem", [
            Column.of("l_orderkey", MySQLType.LONGLONG, nullable=False),
            Column.of("l_comment", MySQLType.VARCHAR, 44),
            Column.of("l_shipdate", MySQLType.DATE, nullable=False),
        ], [Index("PRIMARY", ("l_orderkey",), primary=True),
            Index("ship_idx", ("l_shipdate", "l_orderkey"))],
            schema="tpch")

    def test_roundtrip(self):
        schema = self._schema()
        text = dxl.relation_to_dxl(schema, 1_000_000,
                                   [1_000_001, 1_000_002, 1_000_003],
                                   [1_000_500, 1_000_501])
        back = dxl.relation_from_dxl(text)
        assert back.name == "lineitem"
        assert back.schema == "tpch"
        assert [c.name for c in back.columns] == \
            [c.name for c in schema.columns]
        assert back.columns[1].type.modifier == 44
        assert back.columns[0].type.base is MySQLType.LONGLONG
        assert not back.columns[0].nullable
        assert back.columns[1].nullable
        assert back.indexes[0].primary
        assert back.indexes[1].column_names == ("l_shipdate", "l_orderkey")

    def test_is_valid_xml_with_dxl_namespace(self):
        text = dxl.relation_to_dxl(self._schema(), 1, [2, 3, 4], [5, 6])
        assert dxl.DXL_NS in text


class TestStatisticsDxl:
    def test_roundtrip_with_both_histogram_kinds(self):
        stats = TableStatistics(row_count=500)
        stats.columns["num"] = ColumnStatistics.from_values(
            list(range(500)), unique=True)
        stats.columns["flag"] = ColumnStatistics.from_values(
            ["a", "b", "a", None] * 50)
        text = dxl.statistics_to_dxl(stats, 1_000_900)
        back = dxl.statistics_from_dxl(text)
        assert back.row_count == 500
        assert back.columns["num"].unique
        assert back.columns["num"].distinct_count == 500
        assert back.columns["flag"].null_count == 50
        assert back.columns["flag"].histogram.kind == "singleton"
        assert back.columns["num"].histogram.kind == "equi_height"

    def test_histogram_selectivities_preserved(self):
        values = [i % 97 for i in range(1000)]
        stats = TableStatistics(row_count=1000)
        stats.columns["v"] = ColumnStatistics.from_values(values)
        back = dxl.statistics_from_dxl(dxl.statistics_to_dxl(stats, 9))
        original = stats.columns["v"].histogram
        parsed = back.columns["v"].histogram
        for probe in (0, 13, 50, 96):
            assert parsed.selectivity_eq(probe) == pytest.approx(
                original.selectivity_eq(probe))
            assert parsed.selectivity_lt(probe) == pytest.approx(
                original.selectivity_lt(probe))

    def test_date_min_max_roundtrip(self):
        stats = TableStatistics(row_count=2)
        stats.columns["d"] = ColumnStatistics.from_values(
            [datetime.date(1995, 1, 1), datetime.date(1998, 12, 31)])
        back = dxl.statistics_from_dxl(dxl.statistics_to_dxl(stats, 9))
        assert back.columns["d"].min_value == datetime.date(1995, 1, 1)
        assert back.columns["d"].max_value == datetime.date(1998, 12, 31)

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_statistics_roundtrip_property(self, values):
        stats = TableStatistics(row_count=len(values))
        stats.columns["x"] = ColumnStatistics.from_values(values)
        back = dxl.statistics_from_dxl(dxl.statistics_to_dxl(stats, 1))
        assert back.row_count == len(values)
        column = back.columns["x"]
        assert column.distinct_count == len(set(values))
        assert column.min_value == min(values)
        assert column.max_value == max(values)


class TestTypeDxl:
    def test_roundtrip(self):
        text = dxl.type_to_dxl(MySQLType.VARCHAR, 1014)
        info = dxl.type_from_dxl(text)
        assert info["name"] == "VARCHAR"
        assert info["category"] == "STR"
        assert info["text_related"]
        assert not info["pass_by_value"]
        assert info["length"] == "variable"

    def test_fixed_length_type(self):
        info = dxl.type_from_dxl(dxl.type_to_dxl(MySQLType.LONG, 1003))
        assert info["length"] == "4"
        assert info["pass_by_value"]
