"""Tests for the Orca-style optimizer: memo, bushy search, costed joins."""

import pytest

from repro.bridge.metadata_provider import MySQLMetadataProvider
from repro.bridge.parse_tree_converter import ParseTreeConverter
from repro.orca.joinorder import JoinSearchMode, SubEstimates
from repro.orca.mdcache import MDAccessor
from repro.orca.operators import (
    PhysicalGet,
    PhysicalHashJoin,
    PhysicalNLJoin,
    PhysicalOp,
)
from repro.orca.optimizer import OrcaConfig, OrcaOptimizer
from repro.selectivity import SelectivityEstimator
from repro.sql.parser import parse_statement
from repro.sql.prepare import prepare
from repro.sql.resolver import Resolver

from tests.conftest import build_mini_db


@pytest.fixture(scope="module")
def db():
    return build_mini_db(seed=5, orders=400)


def optimize(db, sql, mode=JoinSearchMode.EXHAUSTIVE2, config=None):
    stmt = parse_statement(sql)
    block, context = Resolver(db.catalog).resolve(stmt)
    prepare(block)
    provider = MySQLMetadataProvider(db.catalog)
    accessor = MDAccessor(provider)
    converter = ParseTreeConverter(accessor)
    estimator = SelectivityEstimator(accessor, use_histograms=True)
    orca_config = config or OrcaConfig(search=mode)
    optimizer = OrcaOptimizer(estimator, orca_config)
    logical = converter.convert_block(block)
    return optimizer.optimize_block(logical, SubEstimates()), block


def count_ops(root, op_type):
    if root is None:
        return []
    found = []
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, op_type):
            found.append(node)
        stack.extend(node.children())
    return found


FOUR_WAY = """
SELECT COUNT(*) FROM customer, orders, lineitem, part
WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey
  AND l_partkey = p_partkey AND c_segment = 'GOLD'
"""

#: A wider join (6 units via self-joins) where the search-space gap
#: between the three modes is unambiguous.
SIX_WAY = """
SELECT COUNT(*) FROM customer, orders o1, orders o2, lineitem l1,
       lineitem l2, part
WHERE c_custkey = o1.o_custkey AND c_custkey = o2.o_custkey
  AND o1.o_orderkey = l1.l_orderkey AND o2.o_orderkey = l2.l_orderkey
  AND l1.l_partkey = p_partkey AND l2.l_partkey = p_partkey
  AND c_segment = 'GOLD'
"""


class TestSearchModes:
    def test_exhaustive2_explores_more_than_exhaustive(self, db):
        # EXHAUSTIVE2 enumerates all connected partitions (full bushy);
        # EXHAUSTIVE only zig-zag shapes — strictly fewer alternatives.
        plan2, __ = optimize(db, SIX_WAY, JoinSearchMode.EXHAUSTIVE2)
        plan1, __ = optimize(db, SIX_WAY, JoinSearchMode.EXHAUSTIVE)
        assert plan2.memo.total_alternatives > \
            plan1.memo.total_alternatives

    def test_greedy_creates_fewest_groups(self, db):
        # Greedy only materialises chain-prefix groups; the DP modes
        # materialise every connected subset.
        plan_greedy, __ = optimize(db, SIX_WAY, JoinSearchMode.GREEDY)
        plan_full, __ = optimize(db, SIX_WAY, JoinSearchMode.EXHAUSTIVE2)
        assert plan_greedy.memo.group_count < plan_full.memo.group_count

    def test_exhaustive2_cost_never_worse(self, db):
        plan2, __ = optimize(db, FOUR_WAY, JoinSearchMode.EXHAUSTIVE2)
        plan_greedy, __ = optimize(db, FOUR_WAY, JoinSearchMode.GREEDY)
        assert plan2.cost <= plan_greedy.cost + 1e-6

    def test_memo_groups_created(self, db):
        plan, __ = optimize(db, FOUR_WAY)
        assert plan.memo.group_count >= 4

    def test_physical_ops_carry_group_ids(self, db):
        # Fig. 6 shows memo group ids after operator names.
        plan, __ = optimize(db, FOUR_WAY)
        gets = count_ops(plan.root, PhysicalGet)
        assert any(get.group_id is not None for get in gets)


class TestJoinCosting:
    def test_hash_join_chosen_for_large_unfiltered_join(self, db):
        # Orca costs hash joins; a full join of two large tables should
        # not be an index NLJ.
        plan, __ = optimize(db, """
            SELECT COUNT(*) FROM orders, lineitem
            WHERE o_orderkey = l_orderkey""")
        assert count_ops(plan.root, PhysicalHashJoin)

    def test_index_nlj_chosen_for_selective_outer(self, db):
        plan, __ = optimize(db, """
            SELECT COUNT(*) FROM orders, lineitem
            WHERE o_orderkey = l_orderkey AND o_orderkey = 5""")
        nl_joins = count_ops(plan.root, PhysicalNLJoin)
        assert any(join.index_inner for join in nl_joins)

    def test_bushy_plans_possible(self, db):
        # A join graph with two independent selective pairs invites a
        # bushy shape; at minimum EXHAUSTIVE2 must consider > left-deep
        # alternatives (memo groups beyond singletons and prefixes).
        plan, __ = optimize(db, FOUR_WAY, JoinSearchMode.EXHAUSTIVE2)
        n_units = 4
        # left-deep-only exploration creates at most n + (n-1) + ...
        # chain groups; full bushy DP creates every connected subset.
        assert plan.memo.group_count > 2 * n_units

    def test_left_deep_only_flag(self, db):
        config = OrcaConfig(search=JoinSearchMode.EXHAUSTIVE2,
                            left_deep_only=True)
        plan, __ = optimize(db, FOUR_WAY, config=config)
        for join in count_ops(plan.root, PhysicalHashJoin):
            build_joins = count_ops(join.build,
                                    (PhysicalHashJoin, PhysicalNLJoin))
            probe_gets = count_ops(join.probe, PhysicalGet)
            # left-deep: at least one side is a single leaf
            assert not build_joins or len(probe_gets) == 1


class TestBlockLevelDecisions:
    def test_agg_strategy_chosen(self, db):
        plan, __ = optimize(db, """
            SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey""")
        assert plan.root.name() in ("StreamAgg", "HashAgg")

    def test_order_by_adds_sort_or_index(self, db):
        plan, __ = optimize(db, """
            SELECT o_orderkey FROM orders, customer
            WHERE o_custkey = c_custkey
            ORDER BY o_totalprice DESC""")
        from repro.orca.operators import PhysicalSort

        assert count_ops(plan.root, PhysicalSort) or plan.order_satisfied

    def test_order_supplying_index_scan(self, db):
        # Section 7, Orca change 4: an index scan can supply the order.
        plan, __ = optimize(db, """
            SELECT o_orderkey, o_custkey FROM orders
            ORDER BY o_orderkey""")
        from repro.executor.plan import AccessMethod
        from repro.orca.operators import PhysicalSort

        if plan.order_satisfied:
            gets = count_ops(plan.root, PhysicalGet)
            assert gets[0].access.method is AccessMethod.INDEX_SCAN
        else:
            assert count_ops(plan.root, PhysicalSort)

    def test_semi_join_variants_costed(self, db):
        plan, __ = optimize(db, """
            SELECT c_custkey FROM customer
            WHERE EXISTS (SELECT * FROM orders
                          WHERE o_custkey = c_custkey)""")
        joins = count_ops(plan.root, (PhysicalHashJoin, PhysicalNLJoin))
        from repro.orca.operators import JoinVariant

        assert any(j.variant is JoinVariant.SEMI for j in joins)

    def test_multi_table_semi_build_disabled(self, db):
        # Section 7, lesson 6: semi hash joins with multi-table build
        # sides are never generated for the MySQL target.
        plan, __ = optimize(db, """
            SELECT c_custkey FROM customer
            WHERE EXISTS (SELECT * FROM orders, lineitem
                          WHERE o_custkey = c_custkey
                            AND l_orderkey = o_orderkey
                            AND l_quantity > 10)""")
        from repro.orca.operators import JoinVariant

        for join in count_ops(plan.root, PhysicalHashJoin):
            if join.variant is JoinVariant.SEMI:
                assert len(count_ops(join.build, PhysicalGet)) == 1

    def test_estimates_positive(self, db):
        plan, __ = optimize(db, FOUR_WAY)
        assert plan.cost > 0
        assert plan.rows >= 1
