"""Large-join search: strategy selector, IKKBZ/GOO/LINDP enumerators,
budget degradation, and the config knobs that steer them.

The heavy lifting (plan validity, bit-identical results across
strategies and executors, wide joins under tight budgets) runs on the
synthetic topologies of :mod:`repro.workloads.joins` — small scale so
tier-1 stays fast, but wide enough (up to 16 relations) that every
selector rung actually fires.
"""

import pytest

from repro import Database, DatabaseConfig
from repro.observability import find_spans
from repro.orca.largejoin import (
    DEFAULT_GOO_THRESHOLD,
    DEFAULT_LINDP_THRESHOLD,
    JoinStrategy,
    budget_floor,
    select_strategy,
)
from repro.workloads.joins import load_topology, make_topology


def _select(n, policy="adaptive", greedy=False, remaining=None,
            lindp=DEFAULT_LINDP_THRESHOLD, goo=DEFAULT_GOO_THRESHOLD):
    return select_strategy(n, greedy, policy, lindp, goo, remaining)


# -- the selector lattice -----------------------------------------------------------


def test_selector_picks_rung_by_component_size():
    assert _select(4) is JoinStrategy.DP
    assert _select(DEFAULT_LINDP_THRESHOLD) is JoinStrategy.DP
    assert _select(DEFAULT_LINDP_THRESHOLD + 1) is JoinStrategy.LINDP
    assert _select(DEFAULT_GOO_THRESHOLD) is JoinStrategy.LINDP
    assert _select(DEFAULT_GOO_THRESHOLD + 1) is JoinStrategy.GOO
    assert _select(50) is JoinStrategy.GOO


def test_selector_honors_custom_thresholds():
    assert _select(9, lindp=8, goo=10) is JoinStrategy.LINDP
    assert _select(11, lindp=8, goo=10) is JoinStrategy.GOO


def test_greedy_mode_wins_outright():
    assert _select(4, greedy=True) is JoinStrategy.GREEDY
    assert _select(40, policy="dp", greedy=True) is JoinStrategy.GREEDY


def test_forced_policy_ignores_size_and_budget():
    assert _select(40, policy="dp") is JoinStrategy.DP
    assert _select(40, policy="dp", remaining=0.0) is JoinStrategy.DP
    assert _select(4, policy="goo") is JoinStrategy.GOO
    assert _select(4, policy="greedy") is JoinStrategy.GREEDY


def test_budget_downgrades_rung_by_rung():
    # A 12-way DP floor is ~7.3s; a thin budget steps DP -> LINDP,
    # a thinner one -> GOO, and an empty one lands on GREEDY.
    n = DEFAULT_LINDP_THRESHOLD
    assert _select(n, remaining=3600.0) is JoinStrategy.DP
    assert _select(n, remaining=1.0) is JoinStrategy.LINDP
    floor_lindp = budget_floor(JoinStrategy.LINDP, n)
    assert _select(n, remaining=floor_lindp / 2) is JoinStrategy.GOO
    assert _select(n, remaining=0.0) is JoinStrategy.GREEDY


def test_budget_floor_shape():
    # DP's floor explodes exponentially but is capped; the polynomial
    # strategies stay tiny, and GREEDY is always free.
    assert budget_floor(JoinStrategy.DP, 20) == 30.0
    assert budget_floor(JoinStrategy.DP, 6) < 0.1
    assert budget_floor(JoinStrategy.LINDP, 50) < 1.0
    assert budget_floor(JoinStrategy.GOO, 50) < \
        budget_floor(JoinStrategy.LINDP, 50)
    assert budget_floor(JoinStrategy.GREEDY, 50) == 0.0


# -- config knobs -------------------------------------------------------------------


def test_join_strategy_knob_validated():
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        Database(DatabaseConfig(orca_join_strategy="bogus"))
    with pytest.raises(ReproError):
        Database(DatabaseConfig(orca_lindp_threshold=1))
    with pytest.raises(ReproError):
        Database(DatabaseConfig(orca_lindp_threshold=20,
                                orca_goo_threshold=10))


# -- end-to-end over synthetic topologies -------------------------------------------

STRATEGY_POLICIES = ("adaptive", "lindp", "goo", "greedy")


def _topology_db(kind, relations, **config):
    db = Database(DatabaseConfig(complex_query_threshold=3,
                                 plan_cache_enabled=False, **config))
    load_topology(db, make_topology(kind, relations, scale=0.5))
    return db


def _widest_search(result):
    strategy, units = None, 0
    for span in find_spans(result.trace, "memo_search"):
        if span.attributes.get("join_strategy") is not None \
                and span.attributes["join_units"] >= units:
            strategy = span.attributes["join_strategy"]
            units = span.attributes["join_units"]
    return strategy, units


@pytest.mark.parametrize("kind", ["chain", "star", "snowflake"])
def test_wide_join_identical_across_strategies_and_executors(kind):
    """A 16-relation join returns bit-identical aggregates no matter
    which strategy planned it or which executor ran it."""
    db = _topology_db(kind, 16)
    topology = make_topology(kind, 16, scale=0.5)
    reference = None
    for policy in STRATEGY_POLICIES:
        db.config.orca_join_strategy = policy
        for mode in ("row", "batch"):
            result = db.run(topology.query, optimizer="orca",
                            executor_mode=mode, trace=True,
                            use_plan_cache=False)
            assert result.optimizer_used == "orca"
            assert result.fallback_reason is None
            assert len(result.rows) == 1
            if reference is None:
                reference = result.rows
            assert result.rows == reference, (policy, mode)


def test_adaptive_strategy_recorded_on_span_and_counters():
    db = _topology_db("chain", 16)
    topology = make_topology("chain", 16, scale=0.5)
    before = db.metrics.count("orca.join_strategy.lindp")
    result = db.run(topology.query, optimizer="orca", trace=True,
                    use_plan_cache=False)
    strategy, units = _widest_search(result)
    # 16 relations sits on the LINDP rung of the default lattice.
    assert strategy == "lindp"
    assert units == 16
    assert db.metrics.count("orca.join_strategy.lindp") > before


def test_explain_analyze_reports_join_strategy():
    db = _topology_db("star", 14)
    topology = make_topology("star", 14, scale=0.5)
    text = db.explain_analyze(topology.query, optimizer="orca")
    assert "join search: lindp (14 relations)" in text


def test_full_dp_never_runs_above_the_selector_cutoff():
    """Counter-based perf-smoke gate: a component wider than
    ``orca_lindp_threshold`` must never enter the exponential full-DP
    enumerator under the adaptive policy."""
    db = _topology_db("chain", DEFAULT_LINDP_THRESHOLD + 2)
    topology = make_topology("chain", DEFAULT_LINDP_THRESHOLD + 2,
                             scale=0.5)
    before = db.metrics.count("orca.join_strategy.dp")
    result = db.run(topology.query, optimizer="orca", trace=True,
                    use_plan_cache=False)
    strategy, units = _widest_search(result)
    assert units == DEFAULT_LINDP_THRESHOLD + 2
    assert strategy != "dp"
    assert db.metrics.count("orca.join_strategy.dp") == before


def test_tight_budget_degrades_to_incumbent_not_fallback():
    """Forcing full DP into a 13-way clique (every subset connected —
    the DP worst case) under a small budget must abort mid-search and
    return the seeded incumbent — never raise into the MySQL
    fallback."""
    db = _topology_db("clique", 13, orca_compile_budget_seconds=0.35,
                      orca_join_strategy="dp")
    topology = make_topology("clique", 13, scale=0.5)
    result = db.run(topology.query, optimizer="orca", trace=True,
                    use_plan_cache=False)
    assert result.optimizer_used == "orca"
    assert result.fallback_reason is None
    assert len(result.rows) == 1
    degradations = sum(
        span.attributes.get("join_budget_degradations", 0)
        for span in find_spans(result.trace, "memo_search"))
    assert degradations >= 1
    assert db.metrics.count("orca.join_budget_degradations") >= 1
    # The degraded plan is still the right answer.
    db.config.orca_join_strategy = "greedy"
    check = db.run(topology.query, optimizer="orca",
                   use_plan_cache=False)
    assert check.rows == result.rows


def test_ikkbz_order_is_a_permutation(monkeypatch):
    """The IKKBZ linearization visits every component member exactly
    once, starting somewhere connected — checked on a live search by
    wrapping the enumerator during a forced-LINDP run."""
    from repro.orca import largejoin

    captured = []
    real = largejoin.ikkbz_order

    def spy(search, component):
        order = real(search, component)
        captured.append((frozenset(component), tuple(order)))
        return order

    monkeypatch.setattr(largejoin, "ikkbz_order", spy)
    db = _topology_db("snowflake", 13, orca_join_strategy="lindp")
    topology = make_topology("snowflake", 13, scale=0.5)
    result = db.run(topology.query, optimizer="orca",
                    use_plan_cache=False)
    assert result.optimizer_used == "orca"
    wide = [(component, order) for component, order in captured
            if len(component) >= 13]
    assert wide, "the 13-way component never reached IKKBZ"
    for component, order in wide:
        assert len(order) == len(component)
        assert frozenset(order) == component
