"""The chaos harness: sustained randomized abuse, zero crashes.

One seeded PRNG drives 300+ mixed TPC-H statements against a single
Database under randomly drawn *regimes*: injected faults at bridge and
execution sites, tight deadlines, statement memory caps, deterministic
cancellations, and combinations.  The acceptance contract:

* the process never crashes — only `ReproError` subclasses may escape
  `db.run()`, everything else is a harness failure;
* every failed statement is *classified*: the fallback log's last event
  carries a `FallbackReason` matching the exception type;
* the Database stays correct: after every chaos event the in-flight
  registry is empty and tracked memory is released, and a baseline
  query battery answers bit-identically to its pre-chaos snapshot at
  regular intervals and at the end.

The seed is fixed, so a failure reproduces exactly.
"""

import random

import pytest

from repro import Database, DatabaseConfig, FaultInjector
from repro.errors import (
    DeadlineExceededError,
    ExecutionError,
    GovernorError,
    ReproError,
    ResourceExhaustedError,
    StatementCancelledError,
)
from repro.governor import CancelToken
from repro.resilience import (
    BRIDGE_INJECTION_SITES,
    EXECUTION_INJECTION_SITES,
    FallbackReason,
    classify_execution_exception,
)
from repro.workloads.tpch import load_tpch, tpch_query

SEED = 20260808
STATEMENTS = 320
SCALE = 0.02

#: Queries the chaos loop draws from — the full TPC-H suite.
QUERY_POOL = tuple(range(1, 23))

#: Baseline battery re-checked against its snapshot during the run.
BASELINE_QUERIES = (1, 3, 4, 6, 10, 14)

#: Abort types the governor may raise, mapped to their reasons.
_GOVERNOR_ABORTS = {
    DeadlineExceededError: FallbackReason.DEADLINE_EXCEEDED,
    StatementCancelledError: FallbackReason.STATEMENT_CANCELLED,
    ResourceExhaustedError: FallbackReason.RESOURCE_EXHAUSTED,
}


def _build_db() -> Database:
    db = Database(DatabaseConfig(
        orca_compile_budget_seconds=5.0,
        # Tight check interval: small data means small row counts, and
        # chaos wants checkpoints to actually fire.
        governor_check_interval=32,
    ))
    load_tpch(db, scale=SCALE)
    return db


def _draw_regime(rng: random.Random) -> dict:
    """One chaos regime: run kwargs + injector + expectation flags."""
    regime = {"kwargs": {}, "injector": None, "may_fail": False}
    roll = rng.random()
    if roll < 0.30:
        # Clean run — chaos includes leaving the system alone.
        return regime
    if roll < 0.45:
        site = rng.choice(BRIDGE_INJECTION_SITES)
        action = rng.choice(("typed", "crash", "sleep"))
        # Bridge faults are *contained* (fallback to MySQL) — the
        # statement must still succeed.
        regime["injector"] = FaultInjector(seed=rng.randrange(1 << 30)) \
            .arm(site, action, times=1)
        return regime
    regime["may_fail"] = True
    if roll < 0.60:
        site = rng.choice(EXECUTION_INJECTION_SITES[:2])  # scan_io, mid_batch
        action = rng.choice(("typed", "crash"))
        regime["injector"] = FaultInjector(seed=rng.randrange(1 << 30)) \
            .arm(site, action, times=1)
    elif roll < 0.72:
        # Deadline: zero always fires; a generous one usually does not.
        regime["kwargs"]["timeout_seconds"] = \
            rng.choice((0.0, 0.0, 0.005, 30.0))
    elif roll < 0.84:
        regime["kwargs"]["memory_limit_bytes"] = \
            rng.choice((1_000, 20_000, 200_000, 64 << 20))
    elif roll < 0.94:
        regime["kwargs"]["cancel_token"] = CancelToken(
            cancel_after_checks=rng.randrange(1, 30))
    else:
        # Combined assault: alloc spike under a memory cap + deadline.
        regime["injector"] = FaultInjector(seed=rng.randrange(1 << 30)) \
            .arm("alloc_spike", "spike", spike_bytes=1 << 30, times=1)
        regime["kwargs"]["memory_limit_bytes"] = 64 << 20
        regime["kwargs"]["timeout_seconds"] = 30.0
    return regime


class TestChaos:
    def test_chaos_sweep_no_crashes_all_classified(self):
        rng = random.Random(SEED)
        db = _build_db()
        baseline = {q: db.execute(tpch_query(q))
                    for q in BASELINE_QUERIES}

        executed = 0
        aborted = 0
        fallbacks = 0
        unclassified = []
        for step in range(STATEMENTS):
            number = rng.choice(QUERY_POOL)
            sql = tpch_query(number)
            regime = _draw_regime(rng)
            db.config.fault_injector = regime["injector"]
            kwargs = dict(regime["kwargs"])
            kwargs["executor_mode"] = rng.choice(("batch", "row"))
            kwargs["use_plan_cache"] = rng.random() < 0.5
            events_before = sum(db.fallback_log.counters.values())
            try:
                result = db.run(sql, **kwargs)
                executed += 1
                if result.fallback_reason is not None:
                    fallbacks += 1
            except ReproError as exc:
                aborted += 1
                if not isinstance(exc, (GovernorError, ExecutionError)):
                    unclassified.append((step, number, repr(exc)))
                    continue
                # Classification contract: the abort landed in the
                # fallback log with the reason its type maps to.
                event = db.fallback_log.last_event
                assert sum(db.fallback_log.counters.values()) \
                    > events_before, f"step {step}: abort not recorded"
                expected_reason = _GOVERNOR_ABORTS.get(
                    type(exc), FallbackReason.EXEC_RUNTIME_ERROR)
                assert classify_execution_exception(exc) \
                    is expected_reason
                assert event.reason in (
                    expected_reason,
                    # A memory breach that retried records
                    # RESOURCE_EXHAUSTED first and may then abort for
                    # another reason; accept any governor reason here.
                    FallbackReason.RESOURCE_EXHAUSTED,
                )
            except BaseException as exc:  # noqa: BLE001 — the point
                pytest.fail(f"step {step} (Q{number}): non-ReproError "
                            f"escaped: {type(exc).__name__}: {exc}")
            finally:
                db.config.fault_injector = None
            # Clean-state invariants after every single statement.
            assert db.active_statements() == {}
            if step % 40 == 39:
                for q in BASELINE_QUERIES:
                    assert db.execute(tpch_query(q)) == baseline[q], \
                        f"baseline Q{q} diverged after step {step}"

        assert executed + aborted == STATEMENTS
        # The regimes guarantee a healthy mix actually happened.
        assert executed >= 100, f"only {executed} statements succeeded"
        assert aborted >= 30, f"only {aborted} statements aborted"
        assert not unclassified, unclassified
        # Every abort surfaced in the governor counters.
        counted = sum(db.metrics.count(name) for name in (
            "governor.deadline_exceeded", "governor.cancelled",
            "governor.mem_breaches", "governor.exec_errors"))
        assert counted >= aborted
        assert db.metrics.count("statements.aborted") == aborted

        # Final full-battery correctness check on the same Database.
        for q in BASELINE_QUERIES:
            assert db.execute(tpch_query(q)) == baseline[q]

    def test_chaos_is_reproducible(self):
        """Two PRNGs with the chaos seed draw identical regimes."""
        a, b = random.Random(SEED), random.Random(SEED)
        for __ in range(200):
            ra, rb = _draw_regime(a), _draw_regime(b)
            assert ra["kwargs"].keys() == rb["kwargs"].keys()
            assert (ra["injector"] is None) == (rb["injector"] is None)
