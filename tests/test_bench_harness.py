"""Tests for the benchmark harness and report formatting."""

import pytest

from repro.bench.harness import (
    BenchmarkResult,
    QueryTiming,
    results_match,
    run_compile_suite,
    run_suite,
)
from repro.bench.report import (
    format_figure10,
    format_figure12,
    format_table1,
    summarize,
)

from tests.conftest import build_mini_db


class TestResultsMatch:
    def test_exact_match(self):
        assert results_match([(1, "a")], [(1, "a")])

    def test_order_insensitive(self):
        assert results_match([(1,), (2,)], [(2,), (1,)])

    def test_float_tolerance(self):
        assert results_match([(45.82250000001,)], [(45.8225,)])

    def test_real_difference_detected(self):
        assert not results_match([(45.8,)], [(45.9,)])

    def test_length_mismatch(self):
        assert not results_match([(1,)], [(1,), (1,)])

    def test_none_values(self):
        assert results_match([(None, 1)], [(None, 1)])
        assert not results_match([(None,)], [(1,)])

    def test_mixed_type_rows(self):
        import datetime

        row = (1, "x", 2.5, datetime.date(1995, 1, 1), None)
        assert results_match([row], [row])


class TestTimingMath:
    def test_ratio_and_speedup(self):
        timing = QueryTiming(1, mysql_seconds=2.0, orca_seconds=0.5)
        assert timing.ratio == pytest.approx(0.25)
        assert timing.speedup == pytest.approx(4.0)

    def test_totals_and_reduction(self):
        result = BenchmarkResult("X", [
            QueryTiming(1, 2.0, 1.0), QueryTiming(2, 2.0, 1.0)])
        assert result.total_mysql == 4.0
        assert result.total_orca == 2.0
        assert result.total_reduction_percent == pytest.approx(50.0)

    def test_wins_and_losses(self):
        result = BenchmarkResult("X", [
            QueryTiming(1, 10.0, 1.0),    # 10X win
            QueryTiming(2, 1.0, 2.0),     # 2X loss
            QueryTiming(3, 1.0, 1.0)])
        assert [t.number for t in result.wins(10.0)] == [1]
        assert [t.number for t in result.losses(1.5)] == [2]

    def test_summarize_fields(self):
        result = BenchmarkResult("X", [
            QueryTiming(1, 10.0, 1.0, results_match=False)])
        headline = summarize(result)
        assert headline["ten_x_wins"] == [1]
        assert headline["mismatches"] == [1]


class TestRunSuite:
    @pytest.fixture(scope="class")
    def db(self):
        return build_mini_db(seed=41, orders=60)

    def test_times_all_queries(self, db):
        queries = {
            1: "SELECT COUNT(*) FROM orders",
            2: "SELECT COUNT(*) FROM orders, customer "
               "WHERE o_custkey = c_custkey",
        }
        result = run_suite(db, queries, "mini", timeout_seconds=60)
        assert [t.number for t in result.timings] == [1, 2]
        assert all(t.mysql_seconds > 0 for t in result.timings)
        assert all(t.results_match for t in result.timings)

    def test_timeout_records_cap(self, db):
        queries = {1: """
            SELECT COUNT(*) FROM lineitem l1, lineitem l2, lineitem l3
            WHERE l1.l_quantity + l2.l_quantity + l3.l_quantity > -1"""}
        result = run_suite(db, queries, "slow", timeout_seconds=0.05,
                           verify_results=False)
        timing = result.timings[0]
        assert timing.mysql_timed_out or timing.mysql_seconds <= 0.2
        if timing.mysql_timed_out:
            assert timing.mysql_seconds == pytest.approx(0.05)

    def test_compile_suite(self, db):
        queries = {1: "SELECT COUNT(*) FROM orders, customer "
                      "WHERE o_custkey = c_custkey"}
        totals = run_compile_suite(db, queries, {
            "MySQL": lambda: None,
            "MySQL + Orca-EXHAUSTIVE2":
                lambda: setattr(db.config, "orca_search", "EXHAUSTIVE2"),
        })
        assert set(totals) == {"MySQL", "MySQL + Orca-EXHAUSTIVE2"}
        assert all(value > 0 for value in totals.values())


class TestReports:
    def _result(self):
        return BenchmarkResult("TPC-H", [
            QueryTiming(1, 1.0, 0.1), QueryTiming(2, 0.01, 0.05)])

    def test_figure10_contains_rows_and_totals(self):
        text = format_figure10(self._result())
        assert "Q    1" in text and "Q    2" in text
        assert "total MySQL" in text
        assert ">=10X faster with Orca: [1]" in text

    def test_figure12_marks_slower_queries(self):
        text = format_figure12(self._result())
        assert "Orca slower" in text

    def test_table1_formatting(self):
        text = format_table1({"MySQL": 0.17, "X": 2.06},
                             {"MySQL": 1.09, "X": 48.08})
        assert "0.17" in text and "48.08" in text
        assert "Compiler" in text
