"""End-to-end execution semantics, cross-checked against brute force.

Every test runs through the full stack (parse/resolve/prepare/optimize/
refine/execute) under *both* optimizers and compares against a Python
reference evaluation, so join kinds, aggregation, ordering, and limits are
all validated behaviourally.
"""

import datetime

import pytest

from tests.conftest import brute_force


def run_both(db, sql):
    mysql_rows = db.execute(sql, optimizer="mysql")
    orca_rows = db.execute(sql, optimizer="orca")
    assert sorted(map(repr, mysql_rows)) == sorted(map(repr, orca_rows)), \
        "optimizers disagree"
    return mysql_rows


class TestScansAndFilters:
    def test_filtered_scan(self, mini_db):
        rows = run_both(mini_db,
                        "SELECT o_orderkey FROM orders "
                        "WHERE o_totalprice > 5000")
        expected = brute_force(mini_db, ["orders"],
                               lambda o: o[3] > 5000, lambda o: (o[0],))
        assert sorted(rows) == sorted(expected)

    def test_range_predicate_on_date(self, mini_db):
        cutoff = datetime.date(1995, 6, 1)
        rows = run_both(mini_db,
                        "SELECT o_orderkey FROM orders "
                        "WHERE o_orderdate >= DATE '1995-06-01'")
        expected = brute_force(mini_db, ["orders"],
                               lambda o: o[4] >= cutoff, lambda o: (o[0],))
        assert sorted(rows) == sorted(expected)

    def test_or_predicate(self, mini_db):
        rows = run_both(mini_db,
                        "SELECT o_orderkey FROM orders "
                        "WHERE o_status = 'O' OR o_totalprice < 500")
        expected = brute_force(
            mini_db, ["orders"],
            lambda o: o[2] == "O" or o[3] < 500, lambda o: (o[0],))
        assert sorted(rows) == sorted(expected)


class TestJoins:
    def test_inner_join(self, mini_db):
        rows = run_both(mini_db, """
            SELECT o_orderkey, l_linenumber FROM orders, lineitem
            WHERE o_orderkey = l_orderkey AND o_totalprice > 8000""")
        expected = brute_force(
            mini_db, ["orders", "lineitem"],
            lambda o, l: o[0] == l[0] and o[3] > 8000,
            lambda o, l: (o[0], l[2]))
        assert sorted(rows) == sorted(expected)

    def test_left_join_null_extension(self, mini_db):
        rows = run_both(mini_db, """
            SELECT c_custkey, o_orderkey FROM customer
            LEFT JOIN orders ON c_custkey = o_custkey
                 AND o_totalprice > 9500""")
        orders = mini_db.storage.heap("orders").rows
        expected = []
        for c in mini_db.storage.heap("customer").rows:
            matches = [o for o in orders
                       if o[1] == c[0] and o[3] > 9500]
            if matches:
                expected.extend((c[0], o[0]) for o in matches)
            else:
                expected.append((c[0], None))
        assert sorted(rows, key=repr) == sorted(expected, key=repr)

    def test_semi_join_via_exists(self, mini_db):
        rows = run_both(mini_db, """
            SELECT c_custkey FROM customer
            WHERE EXISTS (SELECT * FROM orders
                          WHERE o_custkey = c_custkey
                            AND o_totalprice > 9000)""")
        orders = mini_db.storage.heap("orders").rows
        expected = [(c[0],) for c in mini_db.storage.heap("customer").rows
                    if any(o[1] == c[0] and o[3] > 9000 for o in orders)]
        assert sorted(rows) == sorted(expected)

    def test_anti_join_via_not_exists(self, mini_db):
        rows = run_both(mini_db, """
            SELECT c_custkey FROM customer
            WHERE NOT EXISTS (SELECT * FROM orders
                              WHERE o_custkey = c_custkey)""")
        orders = mini_db.storage.heap("orders").rows
        expected = [(c[0],) for c in mini_db.storage.heap("customer").rows
                    if not any(o[1] == c[0] for o in orders)]
        assert sorted(rows) == sorted(expected)

    def test_three_way_join(self, mini_db):
        rows = run_both(mini_db, """
            SELECT c_custkey, l_partkey FROM customer, orders, lineitem
            WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey
              AND c_segment = 'GOLD' AND l_quantity > 45""")
        expected = brute_force(
            mini_db, ["customer", "orders", "lineitem"],
            lambda c, o, l: (c[0] == o[1] and o[0] == l[0]
                             and c[1] is not None and c[2] == "GOLD"
                             and l[3] > 45),
            lambda c, o, l: (c[0], l[1]))
        assert sorted(rows) == sorted(expected)

    def test_cross_join(self, mini_db):
        rows = run_both(mini_db, """
            SELECT COUNT(*) FROM customer, part
            WHERE c_custkey <= 3 AND p_partkey <= 4""")
        assert rows == [(12,)]

    def test_non_equi_join(self, mini_db):
        rows = run_both(mini_db, """
            SELECT COUNT(*) FROM customer c1, customer c2
            WHERE c1.c_custkey < c2.c_custkey AND c1.c_custkey <= 5
              AND c2.c_custkey <= 5""")
        assert rows == [(10,)]


class TestAggregation:
    def test_group_by_count(self, mini_db):
        rows = run_both(mini_db, """
            SELECT o_status, COUNT(*), SUM(o_totalprice)
            FROM orders GROUP BY o_status""")
        heap = mini_db.storage.heap("orders").rows
        expected = {}
        for o in heap:
            entry = expected.setdefault(o[2], [0, 0.0])
            entry[0] += 1
            entry[1] += o[3]
        assert {(r[0], r[1]) for r in rows} == \
            {(k, v[0]) for k, v in expected.items()}
        for r in rows:
            assert r[2] == pytest.approx(expected[r[0]][1])

    def test_scalar_aggregate_over_empty_input(self, mini_db):
        rows = run_both(mini_db, """
            SELECT COUNT(*), SUM(o_totalprice), MIN(o_orderkey)
            FROM orders WHERE o_totalprice < -99999""")
        assert rows == [(0, None, None)]

    def test_group_by_over_empty_input_no_rows(self, mini_db):
        rows = run_both(mini_db, """
            SELECT o_status, COUNT(*) FROM orders
            WHERE o_totalprice < -99999 GROUP BY o_status""")
        assert rows == []

    def test_avg_min_max(self, mini_db):
        rows = run_both(mini_db, """
            SELECT AVG(o_totalprice), MIN(o_totalprice),
                   MAX(o_totalprice) FROM orders""")
        values = [o[3] for o in mini_db.storage.heap("orders").rows]
        assert rows[0][0] == pytest.approx(sum(values) / len(values))
        assert rows[0][1] == min(values)
        assert rows[0][2] == max(values)

    def test_count_distinct(self, mini_db):
        rows = run_both(mini_db,
                        "SELECT COUNT(DISTINCT o_custkey) FROM orders")
        distinct = {o[1] for o in mini_db.storage.heap("orders").rows}
        assert rows == [(len(distinct),)]

    def test_having(self, mini_db):
        rows = run_both(mini_db, """
            SELECT o_custkey, COUNT(*) AS cnt FROM orders
            GROUP BY o_custkey HAVING COUNT(*) >= 8""")
        counts = {}
        for o in mini_db.storage.heap("orders").rows:
            counts[o[1]] = counts.get(o[1], 0) + 1
        expected = [(k, v) for k, v in counts.items() if v >= 8]
        assert sorted(rows) == sorted(expected)

    def test_stddev(self, mini_db):
        rows = run_both(mini_db, "SELECT STDDEV(o_totalprice) FROM orders")
        values = [o[3] for o in mini_db.storage.heap("orders").rows]
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        assert rows[0][0] == pytest.approx(variance ** 0.5, rel=1e-6)

    def test_expression_on_aggregate(self, mini_db):
        rows = run_both(mini_db, """
            SELECT SUM(o_totalprice) / COUNT(*) FROM orders""")
        values = [o[3] for o in mini_db.storage.heap("orders").rows]
        assert rows[0][0] == pytest.approx(sum(values) / len(values))


class TestOrderingAndLimits:
    def test_order_by_desc_with_limit(self, mini_db):
        rows = run_both(mini_db, """
            SELECT o_orderkey, o_totalprice FROM orders
            ORDER BY o_totalprice DESC LIMIT 5""")
        all_prices = sorted(
            (o[3] for o in mini_db.storage.heap("orders").rows),
            reverse=True)
        assert [r[1] for r in rows] == all_prices[:5]

    def test_order_by_multiple_keys(self, mini_db):
        rows = run_both(mini_db, """
            SELECT o_status, o_orderkey FROM orders
            ORDER BY o_status, o_orderkey DESC LIMIT 10""")
        assert rows == sorted(rows, key=lambda r: (r[0], -r[1]))[:10]

    def test_offset(self, mini_db):
        all_rows = run_both(mini_db,
                            "SELECT o_orderkey FROM orders "
                            "ORDER BY o_orderkey")
        page = run_both(mini_db,
                        "SELECT o_orderkey FROM orders "
                        "ORDER BY o_orderkey LIMIT 5 OFFSET 10")
        assert page == all_rows[10:15]

    def test_nulls_sort_first_ascending(self, mini_db):
        rows = run_both(mini_db, """
            SELECT o_comment FROM orders ORDER BY o_comment LIMIT 3""")
        assert rows[0][0] is None

    def test_distinct(self, mini_db):
        rows = run_both(mini_db, "SELECT DISTINCT o_status FROM orders")
        assert len(rows) == len({o[2] for o in
                                 mini_db.storage.heap("orders").rows})


class TestSubqueriesAndSetOps:
    def test_scalar_subquery_in_where(self, mini_db):
        rows = run_both(mini_db, """
            SELECT COUNT(*) FROM orders
            WHERE o_totalprice > (SELECT AVG(o_totalprice) FROM orders)""")
        values = [o[3] for o in mini_db.storage.heap("orders").rows]
        avg = sum(values) / len(values)
        assert rows == [(sum(1 for v in values if v > avg),)]

    def test_correlated_scalar_subquery(self, mini_db):
        rows = run_both(mini_db, """
            SELECT COUNT(*) FROM lineitem, part
            WHERE p_partkey = l_partkey AND p_brand = 'Brand#1'
              AND l_quantity > (SELECT AVG(l_quantity) FROM lineitem
                                WHERE l_partkey = p_partkey)""")
        lines = mini_db.storage.heap("lineitem").rows
        parts = {p[0] for p in mini_db.storage.heap("part").rows
                 if p[1] == "Brand#1"}
        expected = 0
        for line in lines:
            if line[1] not in parts:
                continue
            peers = [l[3] for l in lines if l[1] == line[1]]
            if line[3] > sum(peers) / len(peers):
                expected += 1
        assert rows == [(expected,)]

    def test_union_all(self, mini_db):
        rows = run_both(mini_db, """
            SELECT o_orderkey FROM orders WHERE o_orderkey <= 3
            UNION ALL
            SELECT o_orderkey FROM orders WHERE o_orderkey <= 2""")
        assert sorted(rows) == [(1,), (1,), (2,), (2,), (3,)]

    def test_union_distinct(self, mini_db):
        rows = run_both(mini_db, """
            SELECT o_orderkey FROM orders WHERE o_orderkey <= 3
            UNION
            SELECT o_orderkey FROM orders WHERE o_orderkey <= 2""")
        assert sorted(rows) == [(1,), (2,), (3,)]

    def test_cte_shared_across_consumers(self, mini_db):
        rows = run_both(mini_db, """
            WITH big AS (SELECT o_custkey AS ck, o_totalprice AS price
                         FROM orders WHERE o_totalprice > 8000)
            SELECT b1.ck FROM big b1, big b2
            WHERE b1.ck = b2.ck AND b1.price < b2.price""")
        big = [(o[1], o[3]) for o in mini_db.storage.heap("orders").rows
               if o[3] > 8000]
        expected = [(a[0],) for a in big for b in big
                    if a[0] == b[0] and a[1] < b[1]]
        assert sorted(rows) == sorted(expected)

    def test_derived_table_execution(self, mini_db):
        rows = run_both(mini_db, """
            SELECT spend.ck, spend.total FROM
            (SELECT o_custkey AS ck, SUM(o_totalprice) AS total
             FROM orders GROUP BY o_custkey) AS spend
            WHERE spend.total > 20000""")
        totals = {}
        for o in mini_db.storage.heap("orders").rows:
            totals[o[1]] = totals.get(o[1], 0.0) + o[3]
        expected = [(k, pytest.approx(v)) for k, v in totals.items()
                    if v > 20000]
        assert sorted(r[0] for r in rows) == \
            sorted(k for k, v in totals.items() if v > 20000)


class TestWindowFunctions:
    def test_rank_per_partition(self, mini_db):
        rows = run_both(mini_db, """
            SELECT o_status, o_orderkey,
                   RANK() OVER (PARTITION BY o_status
                                ORDER BY o_totalprice DESC) AS rk
            FROM orders""")
        heap = mini_db.storage.heap("orders").rows
        for status, orderkey, rank in rows:
            prices = sorted((o[3] for o in heap if o[2] == status),
                            reverse=True)
            row_price = next(o[3] for o in heap if o[0] == orderkey)
            assert rank == prices.index(row_price) + 1

    def test_row_number_is_dense(self, mini_db):
        rows = run_both(mini_db, """
            SELECT o_status,
                   ROW_NUMBER() OVER (PARTITION BY o_status
                                      ORDER BY o_orderkey) AS rn
            FROM orders""")
        per_status = {}
        for status, rn in sorted(rows):
            per_status.setdefault(status, []).append(rn)
        for numbers in per_status.values():
            assert sorted(numbers) == list(range(1, len(numbers) + 1))

    def test_sum_over_whole_partition(self, mini_db):
        rows = run_both(mini_db, """
            SELECT o_status, SUM(o_totalprice) OVER
                   (PARTITION BY o_status) AS total
            FROM orders""")
        totals = {}
        for o in mini_db.storage.heap("orders").rows:
            totals[o[2]] = totals.get(o[2], 0.0) + o[3]
        for status, total in rows:
            assert total == pytest.approx(totals[status])
