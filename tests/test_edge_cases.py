"""Edge-case behaviours across the engine."""

import pytest

from repro.bench.harness import results_match

from tests.conftest import build_mini_db


@pytest.fixture(scope="module")
def db():
    return build_mini_db(seed=91, orders=80)


def run_both(db, sql):
    mysql_rows = db.execute(sql, optimizer="mysql")
    orca_rows = db.execute(sql, optimizer="orca")
    assert results_match(mysql_rows, orca_rows), sql
    return mysql_rows


class TestUnionOrdering:
    def test_union_all_with_order_by_output_column(self, db):
        rows = run_both(db, """
            SELECT o_orderkey FROM orders WHERE o_orderkey <= 5
            UNION ALL
            SELECT o_orderkey FROM orders
            WHERE o_orderkey BETWEEN 3 AND 6
            ORDER BY o_orderkey DESC""")
        values = [r[0] for r in rows]
        assert values == sorted(values, reverse=True)

    def test_union_dedup_then_limit(self, db):
        rows = run_both(db, """
            SELECT o_status FROM orders
            UNION
            SELECT o_status FROM orders
            LIMIT 2""")
        assert len(rows) == 2
        assert len(set(rows)) == 2


class TestWindowEdges:
    def test_running_sum_with_order(self, db):
        rows = run_both(db, """
            SELECT o_orderkey,
                   SUM(o_totalprice) OVER (ORDER BY o_orderkey) AS running
            FROM orders
            ORDER BY o_orderkey
            LIMIT 10""")
        totals = dict((o[0], o[3])
                      for o in db.storage.heap("orders").rows)
        expected = 0.0
        for orderkey, running in rows:
            expected += totals[orderkey]
            assert running == pytest.approx(expected)

    def test_rank_over_aggregate(self, db):
        # Windows over aggregated output (the SELECT(2) + window(2) order
        # of Section 4.1).
        rows = run_both(db, """
            SELECT o_status, COUNT(*) AS cnt,
                   RANK() OVER (ORDER BY COUNT(*) DESC) AS rk
            FROM orders GROUP BY o_status""")
        by_rank = sorted(rows, key=lambda r: r[2])
        counts = [r[1] for r in by_rank]
        assert counts == sorted(counts, reverse=True)


class TestEmptyAndBoundary:
    def test_empty_table_aggregate(self, db):
        rows = run_both(db, """
            SELECT COUNT(*), SUM(o_totalprice) FROM orders
            WHERE o_orderkey > 999999""")
        assert rows == [(0, None)]

    def test_limit_zero(self, db):
        assert run_both(db, "SELECT o_orderkey FROM orders LIMIT 0") == []

    def test_limit_beyond_rows(self, db):
        rows = run_both(db,
                        "SELECT COUNT(*) FROM customer LIMIT 9999")
        assert len(rows) == 1

    def test_select_constant_no_from(self, db):
        assert db.execute("SELECT 1 + 1", optimizer="mysql") == [(2,)]

    def test_cross_product_small(self, db):
        rows = run_both(db, """
            SELECT COUNT(*) FROM part p1, part p2
            WHERE p1.p_partkey <= 3 AND p2.p_partkey <= 3""")
        assert rows == [(9,)]

    def test_self_join_aliases_stay_distinct(self, db):
        rows = run_both(db, """
            SELECT o1.o_orderkey, o2.o_orderkey
            FROM orders o1, orders o2
            WHERE o1.o_orderkey + 1 = o2.o_orderkey
              AND o1.o_orderkey <= 3""")
        assert sorted(rows) == [(1, 2), (2, 3), (3, 4)]

    def test_having_without_group_by(self, db):
        rows = run_both(db, """
            SELECT COUNT(*) FROM orders HAVING COUNT(*) > 0""")
        assert len(rows) == 1

    def test_in_list_with_duplicates(self, db):
        rows = run_both(db, """
            SELECT COUNT(*) FROM orders
            WHERE o_orderkey IN (1, 1, 2, 2)""")
        assert rows == [(2,)]


class TestStatisticsLifecycle:
    def test_analyze_refreshes_after_dml(self):
        db = build_mini_db(seed=92, orders=50)
        before = db.catalog.statistics("orders").row_count
        db.run("DELETE FROM orders WHERE o_orderkey <= 10")
        # Stats are stale until ANALYZE, like MySQL.
        assert db.catalog.statistics("orders").row_count == before
        db.analyze()
        assert db.catalog.statistics("orders").row_count == before - 10

    def test_queries_still_correct_with_stale_stats(self):
        db = build_mini_db(seed=93, orders=50)
        db.run("DELETE FROM orders WHERE o_orderkey <= 25")
        rows = run_both(db, "SELECT COUNT(*) FROM orders")
        assert rows == [(25,)]
