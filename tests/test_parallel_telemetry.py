"""Cross-process worker telemetry: spans, metric deltas, parity.

The tentpole promise is that telemetry sees *through* the fork
boundary: a parallel statement's trace carries one ``parallel_worker``
child span per morsel worker, the workers' counter/histogram deltas
merge into the parent registry, forked governor checkpoints fold into
the parent governor, and — the referee — a parallel run leaves exactly
the same ``executor.batch_rows`` / ``storage.chunks_skipped`` totals a
serial run does, on both pool backends and any worker count.
"""

import pickle
from types import SimpleNamespace

import pytest

from repro.executor.parallel import ParallelContext, WorkerTelemetry
from repro.governor import ExecutionGovernor
from repro.observability import MetricsRegistry, find_spans
from tests.conftest import build_mini_db
from tests.test_parallel import parallel_config

SCAN_SQL = ("SELECT o_orderkey, o_totalprice FROM orders "
            "WHERE o_totalprice > 50")
#: Leading-key range predicate so zone maps actually skip chunks.
ZONE_SQL = "SELECT o_orderkey FROM orders WHERE o_orderkey <= 64"


@pytest.fixture(scope="module")
def db():
    return build_mini_db(seed=11, orders=150, config=parallel_config())


class TestWorkerSpans:
    """EXPLAIN ANALYZE / trace_export must see per-worker child spans."""

    def test_trace_contains_worker_spans(self, db):
        result = db.run(SCAN_SQL, trace=True, executor_workers=4,
                        use_plan_cache=False)
        spans = find_spans(result.trace, "parallel_worker")
        assert spans, "no parallel_worker spans grafted into the trace"
        for span in spans:
            assert span.closed
            attrs = span.attributes
            assert attrs["backend"] == "fork"
            assert attrs["op"] in {"scan", "agg_build", "join_build"}
            assert attrs["morsels"] >= 0
            assert attrs["seconds"] >= 0.0
        # The grafted spans carry the whole story: every morsel and
        # every scanned-and-kept row is attributed to some worker.
        scan_spans = [s for s in spans if s.attributes["op"] == "scan"]
        parallel = db._last_parallel
        assert sum(s.attributes["morsels"] for s in scan_spans) \
            == sum(u["morsels"] for u in parallel.utilization())
        assert sum(s.attributes["rows"] for s in scan_spans) \
            == len(result.rows)

    def test_execute_span_carries_skew_attributes(self, db):
        result = db.run(SCAN_SQL, trace=True, executor_workers=4,
                        use_plan_cache=False)
        exec_span = find_spans(result.trace, "execute")[0]
        attrs = exec_span.attributes
        assert attrs["parallel_backend"] == "fork"
        assert attrs["parallel_workers"] == 4
        assert attrs["worker_min_morsels"] <= attrs["worker_max_morsels"]
        assert attrs["worker_stddev_morsels"] >= 0.0
        # Worker spans live under the execute span, inside the tree.
        assert find_spans(exec_span, "parallel_worker")

    def test_thread_backend_spans(self):
        db = build_mini_db(
            seed=11, orders=150,
            config=parallel_config(parallel_backend="thread"))
        result = db.run(SCAN_SQL, trace=True, executor_workers=3,
                        use_plan_cache=False)
        spans = find_spans(result.trace, "parallel_worker")
        assert spans
        assert all(s.attributes["backend"] == "thread" for s in spans)

    def test_exported_trace_keeps_worker_spans(self, db):
        # find_spans works identically on the JSON export (satellite 1's
        # other half lives in test_observability.py).
        result = db.run(SCAN_SQL, trace=True, executor_workers=2,
                        use_plan_cache=False)
        exported = result.trace.to_dict()
        spans = find_spans(exported, "parallel_worker")
        assert spans
        assert all(s["closed"] for s in spans)

    def test_explain_analyze_footer_shows_workers(self, db):
        text = db.explain_analyze(SCAN_SQL, executor_workers=4)
        assert "parallel:" in text and "workers" in text
        assert "worker 0:" in text and "morsels" in text
        assert "skew: min" in text and "stddev" in text


class TestWorkerMetrics:
    """Worker-side deltas must merge into the parent registry."""

    def test_counters_and_histograms_merge(self, db):
        m = db.metrics
        before_morsels = m.count("executor.worker_morsels")
        before_rows = m.count("executor.worker_rows")
        before_seconds = m.histogram("executor.worker_seconds")
        before_seconds = before_seconds.count if before_seconds else 0
        result = db.run(SCAN_SQL, executor_workers=2,
                        use_plan_cache=False)
        parallel = db._last_parallel
        utilization = parallel.utilization()
        assert m.count("executor.worker_morsels") - before_morsels \
            == sum(u["morsels"] for u in utilization)
        assert m.count("executor.worker_rows") - before_rows \
            == sum(u["rows"] for u in utilization)
        assert sum(u["rows"] for u in utilization) >= len(result.rows)
        # One executor.worker_seconds observation per worker per op.
        seconds = m.histogram("executor.worker_seconds")
        assert seconds is not None
        assert seconds.count > before_seconds
        assert m.histogram("executor.morsel_seconds") is not None

    def test_worker_telemetry_pickles_with_delta(self):
        wt = WorkerTelemetry(3)
        wt.note_morsel(7, 10, 0.25, 1000)
        wt.note_morsel(9, 4, 0.05, 4000)
        wt.checkpoints = 2
        clone = pickle.loads(pickle.dumps(wt, pickle.HIGHEST_PROTOCOL))
        assert clone.worker_id == 3
        assert clone.morsels == 2 and clone.rows == 14
        assert clone.checkpoints == 2 and clone.peak_bytes == 4000
        assert clone.records == [(7, 10, 0.25), (9, 4, 0.05)]
        registry = MetricsRegistry()
        clone.delta.merge_into(registry)
        assert registry.count("executor.worker_morsels") == 2
        assert registry.count("executor.worker_rows") == 14
        assert registry.histogram("executor.morsel_seconds").count == 2


class TestSerialParallelParity:
    """Satellite 3: a parallel run must leave exactly the totals a
    serial run does once the worker deltas merge — same batch rows,
    same zone-map skips — for both backends and workers 1-4."""

    @pytest.mark.parametrize("backend", ["fork", "thread"])
    def test_counter_totals_match_serial(self, backend):
        db = build_mini_db(
            seed=23, orders=200,
            config=parallel_config(parallel_backend=backend))

        def run_counting(workers):
            before_rows = db.metrics.count("executor.batch_rows")
            before_skips = db.metrics.count("storage.chunks_skipped")
            result = db.run(ZONE_SQL, executor_mode="batch",
                            use_plan_cache=False,
                            executor_workers=workers)
            return (db.metrics.count("executor.batch_rows")
                    - before_rows,
                    db.metrics.count("storage.chunks_skipped")
                    - before_skips,
                    result.rows)

        serial_rows, serial_skips, serial_result = run_counting(1)
        assert serial_skips > 0, "zone maps skipped nothing — " \
            "the parity run must exercise chunk skipping"
        for workers in (2, 3, 4):
            par_rows, par_skips, par_result = run_counting(workers)
            assert par_result == serial_result
            assert par_rows == serial_rows, \
                f"batch_rows diverged at workers={workers}"
            assert par_skips == serial_skips, \
                f"chunks_skipped diverged at workers={workers}"


class TestSkewAndUtilization:

    def test_skew_counts_idle_workers_as_zero(self):
        context = ParallelContext(4, backend="thread")
        context.ops = 1
        context.workers_spawned = 4
        context.worker_stats = {0: [6, 60, 0.1], 1: [2, 20, 0.05]}
        skew = context.skew()
        # counts = [6, 2, 0, 0]: idle workers ARE the skew story.
        assert skew["workers"] == 4
        assert skew["min_morsels"] == 0
        assert skew["max_morsels"] == 6
        assert skew["mean_morsels"] == pytest.approx(2.0)
        assert skew["stddev_morsels"] == pytest.approx(6 ** 0.5)

    def test_no_parallel_op_means_no_skew(self):
        context = ParallelContext(4, backend="thread")
        assert context.skew() is None
        assert context.utilization() == []

    def test_db_level_skew_and_utilization(self, db):
        db.run(SCAN_SQL, executor_workers=4, use_plan_cache=False)
        parallel = db._last_parallel
        assert parallel.ops >= 1
        skew = parallel.skew()
        assert skew["min_morsels"] <= skew["mean_morsels"] \
            <= skew["max_morsels"]
        utilization = parallel.utilization()
        assert utilization == sorted(utilization,
                                     key=lambda u: u["worker"])
        # Only workers that did work appear in utilization; skew sees
        # every spawned worker.
        assert len(utilization) <= skew["workers"]
        assert parallel.morsel_records
        total = sum(u["morsels"] for u in utilization)
        assert len(parallel.morsel_records) == total


class TestGovernorCheckpointFolding:
    """Forked workers' checkpoint counts fold into the parent governor;
    thread/inline workers share it, so theirs must NOT double-count."""

    def test_fork_checkpoints_fold_into_parent(self):
        governor = ExecutionGovernor(timeout_seconds=30.0)
        runtime = SimpleNamespace(governor=governor)
        context = ParallelContext(2, backend="fork")
        results = context._run_morsels(runtime, list(range(6)),
                                       lambda i: [i], 2)
        assert results == [[i] for i in range(6)]
        # One checkpoint per morsel ran in the children; all 6 folded.
        assert governor.checkpoints == 6

    def test_thread_checkpoints_not_double_counted(self):
        governor = ExecutionGovernor(timeout_seconds=30.0)
        runtime = SimpleNamespace(governor=governor)
        context = ParallelContext(2, backend="thread")
        context._run_morsels(runtime, list(range(6)),
                             lambda i: [i], 2)
        assert governor.checkpoints == 6

    def test_inline_checkpoints_not_double_counted(self):
        governor = ExecutionGovernor(timeout_seconds=30.0)
        runtime = SimpleNamespace(governor=governor)
        context = ParallelContext(1, backend="fork")
        context._run_morsels(runtime, list(range(6)),
                             lambda i: [i], 1)
        assert governor.checkpoints == 6
