"""Tests for the MySQL type system and type categories (Section 5.1)."""

import datetime

import pytest

from repro.mysql_types import (
    AGGREGATE_CATEGORIES,
    SCALAR_CATEGORIES,
    TYPE_TO_CATEGORY,
    Interval,
    MySQLType,
    TypeCategory,
    TypeInstance,
    category_of,
    coerce,
    is_pass_by_value,
    is_text_related,
    python_type_for,
    sql_compare,
)


class TestTypeCounts:
    def test_exactly_31_mysql_types(self):
        # "MySQL has 31 types" (Section 5.1).
        assert len(MySQLType) == 31

    def test_exactly_12_scalar_categories(self):
        # "The 31 types are divided into 12 type categories."
        assert len(SCALAR_CATEGORIES) == 12

    def test_exactly_14_aggregate_categories(self):
        # STAR and ANY exist only for aggregations (Section 5.2).
        assert len(AGGREGATE_CATEGORIES) == 14
        assert TypeCategory.STAR in AGGREGATE_CATEGORIES
        assert TypeCategory.ANY in AGGREGATE_CATEGORIES
        assert TypeCategory.STAR not in SCALAR_CATEGORIES

    def test_every_type_has_a_category(self):
        for mysql_type in MySQLType:
            assert category_of(mysql_type) in SCALAR_CATEGORIES


class TestCategoryAssignments:
    def test_numeric_category_groups_decimals_and_floats(self):
        # "DECIMAL, FLOAT, DOUBLE, and NEWDECIMAL are put into the 'NUM'
        # type category" (Section 5.1).
        for t in (MySQLType.DECIMAL, MySQLType.NEWDECIMAL,
                  MySQLType.FLOAT, MySQLType.DOUBLE):
            assert category_of(t) is TypeCategory.NUM

    def test_blob_category_groups_four_blob_types(self):
        blobs = [t for t, c in TYPE_TO_CATEGORY.items()
                 if c is TypeCategory.BLB]
        assert len(blobs) == 4

    def test_integer_types_split_into_three_categories(self):
        # The Section 7 lesson: the coarse INT category was replaced with
        # INT2/INT4/INT8 so Orca could match indexes.
        assert category_of(MySQLType.SHORT) is TypeCategory.INT2
        assert category_of(MySQLType.LONG) is TypeCategory.INT4
        assert category_of(MySQLType.LONGLONG) is TypeCategory.INT8
        assert category_of(MySQLType.YEAR) is TypeCategory.INT2
        assert category_of(MySQLType.ENUM) is TypeCategory.INT4
        assert category_of(MySQLType.SET) is TypeCategory.INT8


class TestTypeMetadata:
    def test_pass_by_value_for_small_fixed_types(self):
        assert is_pass_by_value(MySQLType.LONG)
        assert is_pass_by_value(MySQLType.DOUBLE)
        assert not is_pass_by_value(MySQLType.VARCHAR)
        assert not is_pass_by_value(MySQLType.BLOB)

    def test_text_related_flags(self):
        assert is_text_related(MySQLType.VARCHAR)
        assert is_text_related(MySQLType.BLOB)
        assert not is_text_related(MySQLType.DATE)

    def test_type_instance_width_uses_modifier_for_varchar(self):
        wide = TypeInstance(MySQLType.VARCHAR, 100)
        narrow = TypeInstance(MySQLType.VARCHAR, 10)
        assert wide.width > narrow.width

    def test_type_instance_str(self):
        assert str(TypeInstance(MySQLType.VARCHAR, 25)) == "VARCHAR(25)"
        assert str(TypeInstance(MySQLType.DATE)) == "DATE"


class TestInterval:
    def test_add_days(self):
        start = datetime.date(1995, 1, 30)
        assert Interval(days=5).add_to(start) == datetime.date(1995, 2, 4)

    def test_add_months_clamps_day(self):
        start = datetime.date(1995, 1, 31)
        assert Interval(months=1).add_to(start) == datetime.date(1995, 2, 28)

    def test_add_three_months(self):
        start = datetime.date(1995, 1, 1)
        assert Interval(months=3).add_to(start) == datetime.date(1995, 4, 1)

    def test_year_wraps(self):
        start = datetime.date(1995, 11, 15)
        assert Interval(months=3).add_to(start) == datetime.date(1996, 2, 15)

    def test_negate(self):
        start = datetime.date(1995, 4, 1)
        interval = Interval(months=3)
        assert interval.negate().add_to(start) == datetime.date(1995, 1, 1)


class TestRuntimeValues:
    def test_sql_compare_null_returns_none(self):
        assert sql_compare(None, 1) is None
        assert sql_compare(1, None) is None

    def test_sql_compare_orders_numbers(self):
        assert sql_compare(1, 2) == -1
        assert sql_compare(2.5, 2.5) == 0
        assert sql_compare(3, 2) == 1

    def test_sql_compare_mixed_int_float(self):
        assert sql_compare(1, 1.0) == 0

    def test_python_type_for_each_category(self):
        assert python_type_for(MySQLType.LONG) is int
        assert python_type_for(MySQLType.DOUBLE) is float
        assert python_type_for(MySQLType.VARCHAR) is str
        assert python_type_for(MySQLType.DATE) is datetime.date
        assert python_type_for(MySQLType.DATETIME) is datetime.datetime

    def test_coerce_null_passthrough(self):
        assert coerce(None, MySQLType.LONG) is None

    def test_coerce_string_to_date(self):
        assert coerce("1995-06-17", MySQLType.DATE) == \
            datetime.date(1995, 6, 17)

    def test_coerce_datetime_to_date(self):
        value = datetime.datetime(1995, 6, 17, 10, 30)
        assert coerce(value, MySQLType.DATE) == datetime.date(1995, 6, 17)

    def test_coerce_int_to_float(self):
        assert coerce(3, MySQLType.DOUBLE) == 3.0
        assert isinstance(coerce(3, MySQLType.DOUBLE), float)
