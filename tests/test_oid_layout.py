"""Tests for the metadata OID layout (Sections 5.2, 5.3, 5.6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bridge import oid_layout as ol
from repro.errors import InvalidOidError
from repro.mysql_types import (
    AGGREGATE_CATEGORIES,
    SCALAR_CATEGORIES,
    MySQLType,
    TypeCategory,
)
from repro.sql import ast


class TestCubeSizes:
    def test_720_arithmetic_expressions(self):
        # "The total number of arithmetic expressions is therefore
        # 12 x 12 x 5 = 720" (Section 5.2).
        assert ol.ARITHMETIC_COUNT == 720

    def test_864_comparison_expressions(self):
        # "the cube shape is 12 x 12 x 6" (Section 5.2).
        assert ol.COMPARISON_COUNT == 864

    def test_84_aggregate_expressions(self):
        # "the shape of the two-dimensional array is 14 x 6".
        assert ol.AGGREGATE_COUNT == 84


class TestEncodeDecodeBijection:
    def test_arithmetic_roundtrip_all(self):
        seen = set()
        for left in SCALAR_CATEGORIES:
            for right in SCALAR_CATEGORIES:
                for op in ol.ARITHMETIC_OPS:
                    oid = ol.arithmetic_oid(left, right, op)
                    assert oid not in seen
                    seen.add(oid)
                    assert ol.decode_arithmetic(oid) == (left, right, op)
        assert len(seen) == 720

    def test_comparison_roundtrip_all(self):
        seen = set()
        for left in SCALAR_CATEGORIES:
            for right in SCALAR_CATEGORIES:
                for op in ol.COMPARISON_OPS:
                    oid = ol.comparison_oid(left, right, op)
                    seen.add(oid)
                    assert ol.decode_comparison(oid) == (left, right, op)
        assert len(seen) == 864

    def test_aggregate_roundtrip_all(self):
        seen = set()
        for category in AGGREGATE_CATEGORIES:
            for func in ol.AGGREGATE_FUNCS:
                oid = ol.aggregate_oid(category, func)
                seen.add(oid)
                assert ol.decode_aggregate(oid) == (category, func)
        assert len(seen) == 84

    def test_type_oids_roundtrip(self):
        for mysql_type in MySQLType:
            assert ol.decode_type(ol.type_oid(mysql_type)) is mysql_type

    def test_decode_out_of_range_raises(self):
        with pytest.raises(InvalidOidError):
            ol.decode_arithmetic(ol.ARITHMETIC_BASE + 720)
        with pytest.raises(InvalidOidError):
            ol.decode_comparison(ol.COMPARISON_BASE - 1)

    def test_slots_do_not_overlap(self):
        ranges = [
            (ol.TYPE_BASE, ol.TYPE_BASE + 31),
            (ol.ARITHMETIC_BASE, ol.ARITHMETIC_BASE + 720),
            (ol.COMPARISON_BASE, ol.COMPARISON_BASE + 864),
            (ol.AGGREGATE_BASE, ol.AGGREGATE_BASE + 84),
            (ol.FUNCTION_BASE,
             ol.FUNCTION_BASE + len(ol.REGULAR_FUNCTIONS)),
        ]
        for i, (lo1, hi1) in enumerate(ranges):
            for lo2, hi2 in ranges[i + 1:]:
                assert hi1 <= lo2 or hi2 <= lo1

    def test_relations_far_above_fixed_objects(self):
        # Fig. 9: relation objects are "placed sufficiently apart ... so
        # that collisions are avoided".
        assert ol.RELATION_BASE > ol.FUNCTION_BASE + 10_000


class TestCommutators:
    def test_comparison_commutator_follows_section_5_3(self):
        # (a <= b) commutes to (b >= a).
        oid = ol.comparison_oid(TypeCategory.INT8, TypeCategory.NUM,
                                ast.BinOp.LE)
        commuted = ol.commutator_oid(oid)
        assert ol.decode_comparison(commuted) == (
            TypeCategory.NUM, TypeCategory.INT8, ast.BinOp.GE)

    def test_paper_example_int8_gt_num(self):
        # Section 5.3's worked example: INT8 > NUM rewrites to NUM < INT8.
        oid = ol.comparison_oid(TypeCategory.INT8, TypeCategory.NUM,
                                ast.BinOp.GT)
        assert ol.decode_comparison(ol.commutator_oid(oid)) == (
            TypeCategory.NUM, TypeCategory.INT8, ast.BinOp.LT)

    def test_addition_commutes(self):
        oid = ol.arithmetic_oid(TypeCategory.INT4, TypeCategory.NUM,
                                ast.BinOp.ADD)
        assert ol.decode_arithmetic(ol.commutator_oid(oid)) == (
            TypeCategory.NUM, TypeCategory.INT4, ast.BinOp.ADD)

    def test_subtraction_division_modulo_do_not_commute(self):
        # "The operators '-', '/', and '%' do not commute" (Section 5.3).
        for op in (ast.BinOp.SUB, ast.BinOp.DIV, ast.BinOp.MOD):
            oid = ol.arithmetic_oid(TypeCategory.NUM, TypeCategory.NUM, op)
            assert ol.commutator_oid(oid) == ol.INVALID_OID

    def test_commutator_is_involution_for_comparisons(self):
        for left in SCALAR_CATEGORIES:
            for right in SCALAR_CATEGORIES:
                for op in ol.COMPARISON_OPS:
                    oid = ol.comparison_oid(left, right, op)
                    twice = ol.commutator_oid(ol.commutator_oid(oid))
                    assert twice == oid

    def test_invalid_oid_for_aggregates(self):
        oid = ol.aggregate_oid(TypeCategory.NUM, ast.AggFunc.SUM)
        assert ol.commutator_oid(oid) == ol.INVALID_OID


class TestInverses:
    def test_all_six_inverse_pairs(self):
        # {=, <>, <, <=, >, >=} invert to {<>, =, >=, >, <=, <}.
        pairs = [
            (ast.BinOp.EQ, ast.BinOp.NE), (ast.BinOp.NE, ast.BinOp.EQ),
            (ast.BinOp.LT, ast.BinOp.GE), (ast.BinOp.LE, ast.BinOp.GT),
            (ast.BinOp.GT, ast.BinOp.LE), (ast.BinOp.GE, ast.BinOp.LT),
        ]
        for op, inverse_op in pairs:
            oid = ol.comparison_oid(TypeCategory.STR, TypeCategory.STR, op)
            assert ol.decode_comparison(ol.inverse_oid(oid)) == (
                TypeCategory.STR, TypeCategory.STR, inverse_op)

    def test_inverse_only_for_comparisons(self):
        # "Inverse expressions exist only for comparison expressions".
        arith = ol.arithmetic_oid(TypeCategory.NUM, TypeCategory.NUM,
                                  ast.BinOp.ADD)
        assert ol.inverse_oid(arith) == ol.INVALID_OID

    def test_inverse_is_involution(self):
        oid = ol.comparison_oid(TypeCategory.DAT, TypeCategory.DAT,
                                ast.BinOp.LT)
        assert ol.inverse_oid(ol.inverse_oid(oid)) == oid


class TestRelationSpace:
    def test_relation_object_roundtrips(self):
        assert ol.decode_relation_oid(ol.relation_oid(3)) == \
            (3, "relation", None)
        assert ol.decode_relation_oid(ol.column_oid(3, 7)) == \
            (3, "column", 7)
        assert ol.decode_relation_oid(ol.index_oid(2, 1)) == \
            (2, "index", 1)
        assert ol.decode_relation_oid(ol.histogram_oid(2, 4)) == \
            (2, "histogram", 4)
        assert ol.decode_relation_oid(ol.statistics_oid(5)) == \
            (5, "statistics", None)

    def test_below_relation_base_raises(self):
        with pytest.raises(InvalidOidError):
            ol.decode_relation_oid(ol.TYPE_BASE)

    @given(st.integers(min_value=0, max_value=5000),
           st.integers(min_value=0, max_value=400))
    @settings(max_examples=200)
    def test_column_oids_never_collide_across_relations(self, rel, pos):
        oid = ol.column_oid(rel, pos)
        decoded_rel, kind, decoded_pos = ol.decode_relation_oid(oid)
        assert (decoded_rel, kind, decoded_pos) == (rel, "column", pos)


class TestFunctions:
    def test_known_function(self):
        oid = ol.function_oid("SUBSTRING")
        assert oid != ol.INVALID_OID
        assert ol.FUNCTION_BASE <= oid < ol.FUNCTION_BASE + \
            len(ol.REGULAR_FUNCTIONS)

    def test_case_insensitive(self):
        assert ol.function_oid("substring") == ol.function_oid("SUBSTRING")

    def test_unknown_function_invalid(self):
        assert ol.function_oid("NOT_A_FUNCTION") == ol.INVALID_OID

    def test_paper_listed_functions_present(self):
        # Section 5.4 lists: EXTRACT, SUBSTRING, CAST, ROUND, UPPER,
        # CONCAT, ABS.
        for name in ("EXTRACT", "SUBSTRING", "CAST", "ROUND", "UPPER",
                     "CONCAT", "ABS"):
            assert ol.function_oid(name) != ol.INVALID_OID
