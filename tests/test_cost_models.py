"""Tests for both cost models and the memo."""

import pytest

from repro.mysql_optimizer.cost import MySQLCostModel
from repro.orca.cost_model import OrcaCostModel
from repro.orca.memo import Memo
from repro.orca.operators import PhysicalGet


class TestMySQLCostModel:
    def setup_method(self):
        self.model = MySQLCostModel()

    def test_scan_scales_with_rows(self):
        assert self.model.table_scan_cost(10_000) > \
            10 * self.model.table_scan_cost(100)

    def test_lookup_cheaper_than_scan_for_selective_access(self):
        # The bias that makes MySQL chase index NLJ plans: a one-row
        # lookup is far cheaper than a scan.
        assert self.model.index_lookup_cost(1) < \
            self.model.table_scan_cost(1000) / 10

    def test_rescan_cost_is_full_inner_cost(self):
        # The deliberate quirk: non-index join steps are charged a full
        # inner rescan per outer row (no hash-join credit).
        inner = self.model.table_scan_cost(5000)
        assert self.model.rescan_cost(inner) == inner

    def test_sort_cost_superlinear(self):
        assert self.model.sort_cost(10_000) > \
            10 * self.model.sort_cost(1_000)

    def test_sort_of_one_row_free(self):
        assert self.model.sort_cost(1) == 0.0


class TestOrcaCostModel:
    def setup_method(self):
        self.model = OrcaCostModel()

    def test_hash_join_beats_rescan_for_large_outer(self):
        inner_scan = self.model.table_scan_cost(5_000)
        hash_cost = self.model.hash_join_cost(
            build_rows=5_000, probe_rows=10_000, output_rows=10_000)
        rescan_cost = self.model.nljoin_rescan_cost(10_000, inner_scan)
        assert hash_cost < rescan_cost / 100

    def test_index_nlj_beats_hash_for_tiny_outer(self):
        lookup = self.model.index_lookup_cost(2)
        nlj = self.model.index_nljoin_cost(outer_rows=3,
                                           per_lookup_cost=lookup)
        hash_cost = self.model.hash_join_cost(
            build_rows=5_000, probe_rows=3, output_rows=6)
        assert nlj < hash_cost

    def test_orca_lookup_dearer_than_mysqls(self):
        # Section 9: Orca's "relatively high index lookup ... costs";
        # also matches the storage engine's simulated descent penalty.
        mysql = MySQLCostModel()
        assert self.model.index_lookup_cost(1) > \
            2 * mysql.index_lookup_cost(1)

    def test_crossover_exists(self):
        """There is an outer size below which index NLJ wins and above
        which the hash join wins — the Fig. 12 crossover."""
        lookup = self.model.index_lookup_cost(3)
        build_rows = 5_000

        def nlj(outer):
            return self.model.index_nljoin_cost(outer, lookup)

        def hash_join(outer):
            return self.model.hash_join_cost(build_rows, outer,
                                             outer * 3)

        assert nlj(10) < hash_join(10)
        assert nlj(100_000) > hash_join(100_000)

    def test_stream_vs_hash_agg_tradeoff(self):
        rows = 10_000
        few_groups = self.model.hash_agg_cost(rows, groups=5)
        sort_then_stream = self.model.sort_cost(rows) + \
            self.model.stream_agg_cost(rows)
        assert few_groups < sort_then_stream


class TestMemo:
    def test_group_identity_by_key(self):
        memo = Memo()
        a = memo.group(frozenset({1, 2}))
        b = memo.group(frozenset({2, 1}))
        assert a is b
        assert memo.group_count == 1

    def test_group_ids_sequential(self):
        memo = Memo()
        first = memo.group(frozenset({1}))
        second = memo.group(frozenset({2}))
        assert second.group_id == first.group_id + 1

    def test_offer_keeps_cheapest(self):
        memo = Memo()
        group = memo.group(frozenset({1}))
        expensive = PhysicalGet.__new__(PhysicalGet)
        expensive.cost = 0.0
        cheap = PhysicalGet.__new__(PhysicalGet)
        cheap.cost = 0.0
        assert group.offer(expensive, 10.0)
        assert group.offer(cheap, 5.0)
        assert not group.offer(expensive, 7.0)
        assert group.best_plan is cheap
        assert group.best_cost == 5.0

    def test_offer_stamps_group_id(self):
        memo = Memo()
        group = memo.group(frozenset({3}))
        plan = PhysicalGet.__new__(PhysicalGet)
        plan.cost = 0.0
        group.offer(plan, 1.0)
        assert plan.group_id == group.group_id

    def test_alternatives_counted(self):
        memo = Memo()
        group = memo.group(frozenset({1}))
        for cost in (3.0, 2.0, 4.0):
            plan = PhysicalGet.__new__(PhysicalGet)
            plan.cost = 0.0
            group.offer(plan, cost)
        assert group.alternatives == 3
        assert memo.total_alternatives == 3
