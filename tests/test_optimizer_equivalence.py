"""Property-based optimizer equivalence: random queries, equal results.

The reproduction's core invariant — whatever plans the two optimizers
pick, execution must agree — is fuzzed here with randomly composed
queries over the mini schema: random filters, join subsets, aggregation,
ordering, semi-joins, and limits.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.harness import results_match

from tests.conftest import build_mini_db

_DB = build_mini_db(seed=77, orders=120)

_FILTERS = [
    "o_totalprice > {n}",
    "o_totalprice <= {n}",
    "o_status = 'O'",
    "o_priority <> '1-PRIO'",
    "o_orderkey BETWEEN {k} AND {k2}",
    "o_comment IS NOT NULL",
    "o_custkey IN (1, 2, 3, {c})",
    "o_status = 'F' OR o_totalprice < {n}",
]

_JOIN_TAILS = [
    ("", ""),
    (", customer", " AND c_custkey = o_custkey"),
    (", customer, lineitem",
     " AND c_custkey = o_custkey AND l_orderkey = o_orderkey"),
    (", lineitem", " AND l_orderkey = o_orderkey AND l_quantity > 10"),
]

_SHAPES = [
    "SELECT COUNT(*), SUM(o_totalprice) FROM orders{tables} WHERE {where}",
    "SELECT o_status, COUNT(*) FROM orders{tables} WHERE {where} "
    "GROUP BY o_status ORDER BY o_status",
    "SELECT o_orderkey FROM orders{tables} WHERE {where} "
    "ORDER BY o_orderkey LIMIT 17",
    "SELECT o_custkey, MAX(o_totalprice) FROM orders{tables} "
    "WHERE {where} GROUP BY o_custkey HAVING COUNT(*) > 1 "
    "ORDER BY o_custkey LIMIT 25",
    "SELECT o_orderkey FROM orders{tables} WHERE {where} "
    "AND EXISTS (SELECT * FROM lineitem l2 "
    "WHERE l2.l_orderkey = o_orderkey AND l2.l_quantity > 25)",
]


@given(
    shape=st.sampled_from(_SHAPES),
    join=st.sampled_from(_JOIN_TAILS),
    filters=st.lists(st.sampled_from(_FILTERS), min_size=1, max_size=3,
                     unique=True),
    n=st.integers(100, 9000),
    k=st.integers(1, 100),
    c=st.integers(1, 40),
)
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_queries_agree(shape, join, filters, n, k, c):
    tables, join_condition = join
    where = " AND ".join(
        f"({f.format(n=n, k=k, k2=k + 20, c=c)})" for f in filters)
    sql = shape.format(tables=tables, where=where + join_condition)
    mysql_rows = _DB.execute(sql, optimizer="mysql")
    orca_rows = _DB.execute(sql, optimizer="orca")
    assert results_match(mysql_rows, orca_rows), sql


@given(st.integers(1, 5), st.integers(0, 45))
@settings(max_examples=30, deadline=None)
def test_left_join_equivalence(limit, threshold):
    sql = f"""
        SELECT c_custkey, COUNT(o_orderkey) FROM customer
        LEFT JOIN orders ON c_custkey = o_custkey
             AND o_totalprice > {threshold * 200}
        GROUP BY c_custkey
        ORDER BY c_custkey LIMIT {limit * 10}"""
    mysql_rows = _DB.execute(sql, optimizer="mysql")
    orca_rows = _DB.execute(sql, optimizer="orca")
    assert results_match(mysql_rows, orca_rows), sql


@given(st.sampled_from(["Brand#0", "Brand#1", "Brand#2", "Brand#9"]),
       st.integers(5, 45))
@settings(max_examples=20, deadline=None)
def test_correlated_subquery_equivalence(brand, quantity):
    sql = f"""
        SELECT COUNT(*) FROM lineitem, part
        WHERE p_partkey = l_partkey AND p_brand = '{brand}'
          AND l_quantity < {quantity}
          AND l_price > (SELECT AVG(l_price) * 0.5 FROM lineitem
                         WHERE l_partkey = p_partkey)"""
    mysql_rows = _DB.execute(sql, optimizer="mysql")
    orca_rows = _DB.execute(sql, optimizer="orca")
    assert results_match(mysql_rows, orca_rows), sql
