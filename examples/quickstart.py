#!/usr/bin/env python
"""Quickstart: create a database, load data, and compare the optimizers.

Builds a small orders/lineitem schema, runs the same analytical query
through the MySQL-style optimizer and through Orca, and prints both
EXPLAIN trees — the Orca one carries the ``EXPLAIN (ORCA)`` tag and
Orca's cost/row estimates, exactly as the paper's Listing 7 shows.
"""

import datetime
import random

from repro import Database, DatabaseConfig
from repro.catalog import Column, Index, TableSchema
from repro.mysql_types import MySQLType


def build_database() -> Database:
    db = Database(DatabaseConfig(complex_query_threshold=3))
    db.create_table(TableSchema("orders", [
        Column.of("o_orderkey", MySQLType.LONGLONG, nullable=False),
        Column.of("o_custkey", MySQLType.LONGLONG, nullable=False),
        Column.of("o_orderdate", MySQLType.DATE, nullable=False),
        Column.of("o_priority", MySQLType.VARCHAR, 15, nullable=False),
    ], [Index("PRIMARY", ("o_orderkey",), primary=True),
        Index("orders_custkey", ("o_custkey",))]))
    db.create_table(TableSchema("lineitem", [
        Column.of("l_orderkey", MySQLType.LONGLONG, nullable=False),
        Column.of("l_partkey", MySQLType.LONGLONG, nullable=False),
        Column.of("l_quantity", MySQLType.DOUBLE, nullable=False),
        Column.of("l_price", MySQLType.DOUBLE, nullable=False),
    ], [Index("lineitem_orderkey", ("l_orderkey",)),
        Index("lineitem_partkey", ("l_partkey",))]))
    db.create_table(TableSchema("part", [
        Column.of("p_partkey", MySQLType.LONGLONG, nullable=False),
        Column.of("p_brand", MySQLType.VARCHAR, 10, nullable=False),
    ], [Index("PRIMARY", ("p_partkey",), primary=True)]))

    rng = random.Random(0)
    start = datetime.date(1995, 1, 1)
    db.load("orders", [
        (k, k % 50, start + datetime.timedelta(days=k % 365),
         f"{k % 5}-PRIO")
        for k in range(500)])
    db.load("lineitem", [
        (rng.randrange(500), rng.randrange(80),
         float(rng.randrange(1, 50)), round(rng.uniform(10, 1000), 2))
        for __ in range(2500)])
    db.load("part", [(k, f"Brand#{k % 5}") for k in range(80)])
    db.analyze()  # row counts, NDVs, histograms for both optimizers
    return db


QUERY = """
SELECT o_priority, COUNT(*) AS orders, SUM(l_price) AS revenue
FROM orders, lineitem, part
WHERE o_orderkey = l_orderkey
  AND l_partkey = p_partkey
  AND p_brand = 'Brand#2'
  AND o_orderdate >= DATE '1995-03-01'
GROUP BY o_priority
ORDER BY revenue DESC
"""


def main() -> None:
    db = build_database()

    mysql_result = db.run(QUERY, optimizer="mysql")
    orca_result = db.run(QUERY, optimizer="orca")

    print("results (identical under both optimizers):")
    for row in mysql_result.rows:
        print("  ", row)
    assert sorted(mysql_result.rows) == sorted(orca_result.rows)

    print("\n--- MySQL optimizer plan ---")
    print(db.explain(QUERY, optimizer="mysql"))
    print("\n--- Orca plan (note the EXPLAIN (ORCA) tag) ---")
    print(db.explain(QUERY, optimizer="orca"))

    print("\ntimings: mysql "
          f"{mysql_result.compile_seconds * 1000:.1f}ms compile + "
          f"{mysql_result.execute_seconds * 1000:.1f}ms execute; orca "
          f"{orca_result.compile_seconds * 1000:.1f}ms compile + "
          f"{orca_result.execute_seconds * 1000:.1f}ms execute")

    # The router itself: "auto" sends complex queries (>= 3 table refs)
    # through Orca and short ones through MySQL (Section 4.1).
    routed = db.run(QUERY)  # 3 tables -> Orca
    short = db.run("SELECT COUNT(*) FROM orders")
    print(f"\nrouting: 3-table query used {routed.optimizer_used!r}, "
          f"single-table query used {short.optimizer_used!r}")


if __name__ == "__main__":
    main()
