#!/usr/bin/env python
"""A tour of the bridge internals: OIDs, DXL, and the metadata cache.

Walks through what Section 5 of the paper describes: how the MySQL
metadata provider lays out OIDs for types and expressions, how commutator
and inverse expression OIDs are computed, what the DXL exchange looks
like, and how Orca's metadata cache prevents repeated provider requests.
"""

from repro import Database
from repro.bridge import oid_layout
from repro.bridge.metadata_provider import MySQLMetadataProvider
from repro.mysql_types import MySQLType, TypeCategory
from repro.orca.mdcache import MDAccessor
from repro.sql import ast
from repro.workloads.tpch import load_tpch


def main() -> None:
    db = Database()
    load_tpch(db, scale=0.2)
    provider = MySQLMetadataProvider(db.catalog)
    accessor = MDAccessor(provider)

    # --- Section 5.2: the expression cubes -------------------------------
    print("expression OID spaces:")
    print(f"  arithmetic: {oid_layout.ARITHMETIC_COUNT} expressions "
          f"(12 x 12 x 5)")
    print(f"  comparison: {oid_layout.COMPARISON_COUNT} expressions "
          f"(12 x 12 x 6)")
    print(f"  aggregate:  {oid_layout.AGGREGATE_COUNT} expressions "
          f"(14 x 6)")

    # The paper's Section 5.7 trace: "for p_container = 'SM PKG', the OID
    # for STR_EQ_STR is returned ... commutator and inverse exist too".
    str_eq_str = provider.get_comparison_oid(
        TypeCategory.STR, TypeCategory.STR, ast.BinOp.EQ)
    print(f"\nSTR = STR comparison OID: {str_eq_str}")
    print(f"  commutator: {provider.get_commutator_oid(str_eq_str)} "
          f"(STR = STR commutes to itself)")
    inverse = provider.get_inverse_oid(str_eq_str)
    print(f"  inverse:    {inverse} "
          f"-> {oid_layout.decode_comparison(inverse)}")

    lt = provider.get_comparison_oid(TypeCategory.INT8, TypeCategory.NUM,
                                     ast.BinOp.LT)
    print(f"\nINT8 < NUM OID: {lt}")
    print(f"  commutator -> {oid_layout.decode_comparison(provider.get_commutator_oid(lt))}")
    print(f"  inverse    -> {oid_layout.decode_comparison(provider.get_inverse_oid(lt))}")

    sub = provider.get_arithmetic_oid(TypeCategory.NUM, TypeCategory.NUM,
                                      ast.BinOp.SUB)
    print(f"\nNUM - NUM OID: {sub}; commutator: "
          f"{provider.get_commutator_oid(sub)} "
          f"(INVALID: '-' does not commute)")

    # --- Section 5.7: table OIDs and the DXL exchange ----------------------
    lineitem_oid = provider.get_table_oid("tpch.lineitem")
    print(f"\n'tpch.lineitem' -> OID {lineitem_oid}")
    dxl_text = provider.get_relation_dxl(lineitem_oid)
    print("relation DXL (first 200 chars):")
    print("  " + dxl_text[:200] + "...")

    stats = accessor.statistics("lineitem")
    print(f"\nstatistics via the MD accessor (DXL round trip): "
          f"{stats.row_count} rows, "
          f"{len(stats.columns)} column stats, histogram on l_shipdate: "
          f"{type(stats.columns['l_shipdate'].histogram).__name__}")

    # --- Section 5.7: the metadata cache -----------------------------------
    before = dict(provider.request_counts)
    for __ in range(5):
        accessor.statistics("lineitem")
        accessor.relation("lineitem")
    after = provider.request_counts
    print("\nprovider requests before five repeated lookups:", before)
    print("provider requests after:                        ", after)
    print(f"cache hits recorded by the accessor: {accessor.cache_hits} "
          f"(the provider was not queried again)")


if __name__ == "__main__":
    main()
