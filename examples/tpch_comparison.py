#!/usr/bin/env python
"""TPC-H workload comparison (a miniature of the paper's Section 6.1).

Loads the TPC-H-style dataset, runs a selection of the 22 queries under
both optimizers, and prints a Fig. 10-style table: per-query execution
time for MySQL plans and Orca plans, with the total reduction.

Run the full 22-query sweep with ``--all`` (takes a few minutes).
"""

import sys

from repro import Database, DatabaseConfig
from repro.bench import format_figure10, run_suite, summarize
from repro.workloads.tpch import TPCH_QUERIES, load_tpch

#: A representative subset: the paper's headline queries (Q13, Q16, Q21)
#: plus a mix of short and long ones.
DEFAULT_SUBSET = (1, 3, 4, 6, 13, 16, 17, 19, 21)


def main() -> None:
    run_all = "--all" in sys.argv
    db = Database(DatabaseConfig(complex_query_threshold=3,
                                 orca_search="EXHAUSTIVE2"))
    print("loading TPC-H data...")
    load_tpch(db, scale=1.0)

    numbers = sorted(TPCH_QUERIES) if run_all else DEFAULT_SUBSET
    queries = {n: TPCH_QUERIES[n] for n in numbers}
    result = run_suite(db, queries, "TPC-H", timeout_seconds=120.0,
                       progress=lambda line: print("  " + line))
    print()
    print(format_figure10(result))
    print()
    headline = summarize(result)
    assert not headline["mismatches"], (
        "optimizers disagreed on " + str(headline["mismatches"]))
    print("both optimizers returned identical results on every query")


if __name__ == "__main__":
    main()
