#!/usr/bin/env python
"""TPC-DS Q72: the paper's showcase snowflake (Section 3.1, Figs. 4-5).

Q72 joins the catalog_sales fact table with ten dimension/auxiliary
tables.  The MySQL optimizer produces a left-deep plan driven by the fact
table with nested-loop index lookups into the dimensions (Fig. 4); Orca
produces a bushy plan with several hash joins (Fig. 5).  This example
prints both plans and their run times.
"""

from repro import Database, DatabaseConfig
from repro.workloads.tpcds import load_tpcds, tpcds_query


def count_plan_features(explain_text: str) -> dict:
    lines = explain_text.splitlines()
    return {
        "hash_joins": sum("hash join" in line.lower() or
                          "hash semijoin" in line.lower() or
                          "hash antijoin" in line.lower()
                          for line in lines),
        "nested_loops": sum("nested loop" in line.lower()
                            for line in lines),
        "index_lookups": sum("index lookup" in line.lower()
                             for line in lines),
    }


def main() -> None:
    db = Database(DatabaseConfig(complex_query_threshold=2,
                                 orca_search="EXHAUSTIVE2"))
    print("loading TPC-DS data...")
    load_tpcds(db, scale=1.0)
    sql = tpcds_query(72)

    print("\n--- Fig. 4 analog: MySQL optimizer plan ---")
    mysql_plan = db.explain(sql, optimizer="mysql")
    print(mysql_plan)
    print("\n--- Fig. 5 analog: Orca plan ---")
    orca_plan = db.explain(sql, optimizer="orca")
    print(orca_plan)

    mysql_features = count_plan_features(mysql_plan)
    orca_features = count_plan_features(orca_plan)
    print(f"\nplan shape: MySQL {mysql_features}")
    print(f"            Orca  {orca_features}")

    mysql_run = db.run(sql, optimizer="mysql")
    orca_run = db.run(sql, optimizer="orca")
    total_mysql = mysql_run.compile_seconds + mysql_run.execute_seconds
    total_orca = orca_run.compile_seconds + orca_run.execute_seconds
    assert sorted(mysql_run.rows) == sorted(orca_run.rows)
    print(f"\nrun time: MySQL plan {total_mysql:.2f}s, "
          f"Orca plan {total_orca:.2f}s "
          f"({total_mysql / max(total_orca, 1e-9):.1f}X)")


if __name__ == "__main__":
    main()
