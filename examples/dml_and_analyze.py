#!/usr/bin/env python
"""DML, EXPLAIN ANALYZE, and cost-based routing — the engine extensions.

Beyond the paper's core integration, the library ships three usability
extensions this example tours:

* INSERT / DELETE / UPDATE (never routed to Orca — Section 4.1);
* EXPLAIN ANALYZE with per-operator actual row counts, which makes the
  estimation story of Section 5.5 visible;
* the Section 9 future-work routing policy: detour to Orca only when the
  MySQL plan's estimated cost crosses a trigger.
"""

from repro import Database, DatabaseConfig
from repro.workloads.tpch import load_tpch, tpch_query


def main() -> None:
    db = Database(DatabaseConfig())
    print("loading TPC-H data...")
    load_tpch(db, scale=0.5)

    # --- DML --------------------------------------------------------------
    before = db.execute("SELECT COUNT(*) FROM orders")[0][0]
    db.run("INSERT INTO orders VALUES (999991, 1, 'O', 123.45, "
           "DATE '1998-01-15', '1-URGENT', 'Clerk#000000001', 0, 'demo')")
    db.run("UPDATE orders SET o_totalprice = o_totalprice * 1.1 "
           "WHERE o_orderkey = 999991")
    inserted = db.execute(
        "SELECT o_totalprice FROM orders WHERE o_orderkey = 999991")
    print(f"\nDML: {before} orders -> inserted one, price now "
          f"{inserted[0][0]:.2f} after UPDATE")
    removed = db.run("DELETE FROM orders WHERE o_orderkey = 999991")
    print(f"DELETE removed {removed.rows[0][0]} row(s)")

    # --- EXPLAIN ANALYZE -----------------------------------------------------
    print("\nEXPLAIN ANALYZE of TPC-H Q4 (note actual vs estimated rows):")
    print(db.explain_analyze(tpch_query(4), optimizer="orca"))

    # --- cost-based routing ----------------------------------------------------
    db.config.routing = "cost_based"
    db.config.mysql_cost_threshold = 5000.0
    q19 = db.run(tpch_query(19))      # 2 tables: threshold routing would
    q6 = db.run(tpch_query(6))        # never send this to Orca
    print(f"\ncost-based routing: Q19 (2 tables, expensive MySQL plan) "
          f"used {q19.optimizer_used!r}; Q6 (cheap scan) used "
          f"{q6.optimizer_used!r}")


if __name__ == "__main__":
    main()
